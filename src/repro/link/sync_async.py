"""Synchronous → asynchronous interface (Fig 4 of the paper).

A 32-bit, 4-deep FIFO whose write side lives in the switch clock domain
and whose read side is a clockless four-phase channel:

* the switch presents FLITIN + VALID; the interface asserts STALL when
  the register at the write pointer is still occupied;
* each register has a *flag*: set synchronously by the write enable,
  cleared asynchronously once the handshake side has drained the
  register.  Two flip-flops synchronize the asynchronous clear back into
  the clock domain [14], so a freed register becomes visible to the
  write side only two clock edges later — the FIFO decouples the
  domains, at the price of that pessimism;
* a David-cell one-hot chain sequences the asynchronous reads, and
  C-elements run the REQOUT/ACKIN handshake.

Write-enable decode happens on the falling clock edge (combinational
logic settling ahead of the capturing edge); registers and flags sample
on the rising edge — this mirrors hardware and makes the simulation
race-free by construction.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.process import Delay, WaitValue, spawn
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays
from ..elements.latches import FlagSynchronizer, RegisterBus
from .channel import Channel


class SyncToAsyncInterface(Component):
    """The FIFO of Fig 4: synchronous writer, asynchronous reader."""

    def __init__(
        self,
        sim: Simulator,
        clk: Signal,
        width: int = 32,
        depth: int = 4,
        delays: Optional[GateDelays] = None,
        name: str = "s2a",
    ) -> None:
        if depth < 2:
            raise ValueError(f"FIFO depth must be >= 2, got {depth}")
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.clk = clk
        self.width = width
        self.depth = depth

        # switch-facing ports
        self.flit_in = sim.bus(width, f"{name}.flitin")
        self.valid = sim.signal(f"{name}.valid")
        self.stall = sim.signal(f"{name}.stall")

        # link-facing port
        self.out_ch = Channel(sim, width, f"{name}.out")

        # FIFO storage, write enables and flags
        self.wr_en = [sim.signal(f"{name}.wren{i}") for i in range(depth)]
        self.clear = [sim.signal(f"{name}.clear{i}") for i in range(depth)]
        self.registers = [
            RegisterBus(
                sim,
                self.flit_in,
                clk,
                self.wr_en[i],
                delays=self.delays,
                name=f"{name}.reg{i}",
            )
            for i in range(depth)
        ]
        self.flags = [
            FlagSynchronizer(
                sim, clk, self.wr_en[i], self.clear[i], self.delays,
                f"{name}.flag{i}",
            )
            for i in range(depth)
        ]

        self._wp = 0
        self.flits_written = 0
        self.flits_read = 0
        clk.on_change(self._on_clk)
        spawn(sim, self._async_reader(), f"{name}.reader")
        for reg in self.registers:
            self.adopt(reg)
        for flag in self.flags:
            self.adopt(flag)
        self.adopt(self.out_ch)
        self.expose("clk", clk, "in")
        self.expose("flit_in", self.flit_in, "in")
        self.expose("valid", self.valid, "in")
        self.expose("stall", self.stall, "out")

    # ------------------------------------------------------------------
    # synchronous write side
    # ------------------------------------------------------------------
    def _on_clk(self, sig: Signal) -> None:
        if sig._value:
            self._on_rising()
        else:
            self._on_falling()

    def _on_falling(self) -> None:
        # write-enable decode: one-hot on the pointer, gated by VALID and
        # the (synchronized) occupancy flag
        can_write = (
            self.valid._value == 1
            and self.flags[self._wp].flag_s._value == 0
        )
        for i, en in enumerate(self.wr_en):
            en.set(1 if (can_write and i == self._wp) else 0)

    def _on_rising(self) -> None:
        if self.wr_en[self._wp]._value:
            self.flits_written += 1
            self._wp = (self._wp + 1) % self.depth
        # STALL reflects the occupancy of the register now at the write
        # pointer; it settles one clock-to-Q after the edge
        self.sim.schedule(self.delays.dff_clk_q + 1, self._update_stall)

    def _update_stall(self) -> None:
        self.stall.set(1 if self.flags[self._wp].flag_s._value else 0)

    # ------------------------------------------------------------------
    # asynchronous read side (David-cell sequencer + C-element handshake)
    # ------------------------------------------------------------------
    def _async_reader(self) -> Generator:
        d = self.delays
        rp = 0
        while True:
            yield WaitValue(self.flags[rp].flag_a, 1)
            # DC chain select + output mux settle before REQOUT
            yield Delay(d.davidcell + d.mux2)
            self.out_ch.data.set(self.registers[rp].q.value)
            yield Delay(d.celement)
            self.out_ch.req.set(1)
            yield WaitValue(self.out_ch.ack, 1)
            # drain complete: clear the flag (asynchronous CLEAR(x))
            self.clear[rp].set(1)
            self.clear[rp].drive(0, d.davidcell, inertial=False)
            self.flits_read += 1
            self.out_ch.req.set(0)
            yield WaitValue(self.out_ch.ack, 0)
            rp = (rp + 1) % self.depth

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of registers currently holding an unread flit."""
        return sum(flag.flag_a.value for flag in self.flags)
