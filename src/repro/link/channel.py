"""Bundled-data handshake channels.

The paper's link is a *bundled-data* design: an n-bit data bundle
travels with a request wire and returns an acknowledge wire, following
the four-phase (return-to-zero) protocol:

    sender:   data valid → REQ↑ … wait ACK↑ … REQ↓ … wait ACK↓
    receiver: wait REQ↑ → capture → ACK↑ … wait REQ↓ … ACK↓

:class:`Channel` groups the three nets; :func:`send_token` and
:func:`receive_token` are reusable process fragments implementing the
protocol for testbenches and behavioural models.  The word-level link
(I3) replaces the per-transfer REQ with a VALID pulse train — that wire
set is :class:`ValidChannel`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.process import Delay, WaitValue
from ..sim.signal import Bus, Signal


class Channel(Component):
    """A four-phase bundled-data channel (DATA + REQ / ACK)."""

    def __init__(self, sim: Simulator, width: int, name: str = "ch") -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.width = width
        self.data = sim.bus(width, f"{name}.data")
        self.req = sim.signal(f"{name}.req")
        self.ack = sim.signal(f"{name}.ack")
        self.expose("data", self.data)
        self.expose("req", self.req)
        self.expose("ack", self.ack)

    @property
    def wire_count(self) -> int:
        """Physical wires: data bundle + request + acknowledge."""
        return self.width + 2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Channel({self.name}: w={self.width}, req={self.req.value}, "
            f"ack={self.ack.value}, data=0x{self.data.value:x})"
        )


class ValidChannel(Component):
    """The I3 forward path: DATA + VALID pulse train + word-level ACK."""

    def __init__(self, sim: Simulator, width: int, name: str = "vch") -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.width = width
        self.data = sim.bus(width, f"{name}.data")
        self.valid = sim.signal(f"{name}.valid")
        self.ack = sim.signal(f"{name}.ack")
        self.expose("data", self.data)
        self.expose("valid", self.valid)
        self.expose("ack", self.ack)

    @property
    def wire_count(self) -> int:
        """Physical wires: data bundle + valid + acknowledge."""
        return self.width + 2


def send_token(
    channel: Channel,
    value: int,
    setup_ps: int = 0,
    hold_ps: int = 0,
) -> Generator:
    """Process fragment: push one token through ``channel`` (four-phase).

    ``setup_ps`` separates data validity from REQ↑ (the bundled-data
    constraint); ``hold_ps`` keeps REQ low that long before returning.
    Use as ``yield from send_token(ch, 0xA5)`` inside a process.
    """
    channel.data.set(value)
    if setup_ps:
        yield Delay(setup_ps)
    channel.req.set(1)
    yield WaitValue(channel.ack, 1)
    channel.req.set(0)
    yield WaitValue(channel.ack, 0)
    if hold_ps:
        yield Delay(hold_ps)


def receive_token(
    channel: Channel,
    sink: list,
    ack_delay_ps: int = 0,
) -> Generator:
    """Process fragment: pull one token from ``channel`` into ``sink``.

    Appends the captured integer to ``sink`` and completes the
    return-to-zero phase.  ``ack_delay_ps`` models receiver latency.
    """
    yield WaitValue(channel.req, 1)
    sink.append(channel.data.value)
    if ack_delay_ps:
        yield Delay(ack_delay_ps)
    channel.ack.set(1)
    yield WaitValue(channel.req, 0)
    channel.ack.set(0)


def source_process(
    channel: Channel,
    values: list[int],
    setup_ps: int = 0,
    gap_ps: int = 0,
) -> Generator:
    """Process: send every value in ``values`` back to back."""
    for value in values:
        yield from send_token(channel, value, setup_ps=setup_ps)
        if gap_ps:
            yield Delay(gap_ps)


def sink_process(
    channel: Channel,
    sink: list,
    count: Optional[int] = None,
    ack_delay_ps: int = 0,
) -> Generator:
    """Process: receive ``count`` tokens (or forever if ``count`` is None)."""
    received = 0
    while count is None or received < count:
        yield from receive_token(channel, sink, ack_delay_ps=ack_delay_ps)
        received += 1
