"""Serialized asynchronous link implementations (the paper's core).

Builders :func:`build_i1` / :func:`build_i2` / :func:`build_i3` assemble
the three links of Fig 9; :class:`LinkTestbench` drives and measures
them.  Individual modules (interfaces, serializers, wire buffers) are
importable for unit-level work, and :mod:`repro.link.behavioral`
provides fast token-level equivalents for NoC-scale simulation.
"""

from .channel import (
    Channel,
    ValidChannel,
    receive_token,
    send_token,
    sink_process,
    source_process,
)
from .sync_async import SyncToAsyncInterface
from .async_sync import AsyncToSyncInterface
from .serializer import Deserializer, Serializer, check_slicing
from .word_level import EarlyAckDeserializer, WordDeserializer, WordSerializer
from .wiring import (
    AsyncWireBufferChain,
    RepeatedWire,
    RepeatedWireBus,
    wire,
    wire_bus,
)
from .sync_link import SyncPipelineLink
from .assemblies import (
    LinkConfig,
    LinkInstance,
    build_i1,
    build_i2,
    build_i3,
    build_link,
)
from .testbench import (
    WORST_CASE_PATTERN,
    LinkMeasurement,
    LinkTestbench,
    measure_throughput,
)

__all__ = [
    "Channel",
    "ValidChannel",
    "receive_token",
    "send_token",
    "sink_process",
    "source_process",
    "SyncToAsyncInterface",
    "AsyncToSyncInterface",
    "Deserializer",
    "Serializer",
    "check_slicing",
    "EarlyAckDeserializer",
    "WordDeserializer",
    "WordSerializer",
    "AsyncWireBufferChain",
    "RepeatedWire",
    "RepeatedWireBus",
    "wire",
    "wire_bus",
    "SyncPipelineLink",
    "LinkConfig",
    "LinkInstance",
    "build_i1",
    "build_i2",
    "build_i3",
    "build_link",
    "WORST_CASE_PATTERN",
    "LinkMeasurement",
    "LinkTestbench",
    "measure_throughput",
]
