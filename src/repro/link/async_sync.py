"""Asynchronous → synchronous interface (Fig 5 of the paper).

The mirror of Fig 4: an asynchronous latch *writer* and a synchronous
latch *reader*.

* the four-phase input channel latches each arriving word into the
  register selected by the LE David-cell chain, then sets that
  register's flag *asynchronously*;
* the flag crosses into the clock domain through a two-flip-flop
  synchronizer, so the synchronous reader sees a freshly written
  register two rising edges later;
* on a rising edge with the selected flag visible and the switch not
  stalling, the register is steered to FLIT_OUT, VALID is asserted for
  that cycle, and the flag is cleared (a synchronous clear is safe —
  the asynchronous writer never reuses a register whose flag is set).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.process import Delay, WaitValue, spawn
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays
from .channel import Channel


class AsyncToSyncInterface(Component):
    """The FIFO of Fig 5: asynchronous writer, synchronous reader."""

    def __init__(
        self,
        sim: Simulator,
        clk: Signal,
        width: int = 32,
        depth: int = 4,
        delays: Optional[GateDelays] = None,
        name: str = "a2s",
    ) -> None:
        if depth < 2:
            raise ValueError(f"FIFO depth must be >= 2, got {depth}")
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.clk = clk
        self.width = width
        self.depth = depth

        # link-facing port
        self.in_ch = Channel(sim, width, f"{name}.in")

        # switch-facing ports
        self.flit_out = sim.bus(width, f"{name}.flitout")
        self.valid = sim.signal(f"{name}.valid")
        self.stall = sim.signal(f"{name}.stall")

        # storage: asynchronous latch registers with per-register flags
        self.registers = [
            sim.bus(width, f"{name}.lt{i}") for i in range(depth)
        ]
        self.flag_a = [sim.signal(f"{name}.flaga{i}") for i in range(depth)]
        self._sync1 = [sim.signal(f"{name}.sync1_{i}") for i in range(depth)]
        self.flag_s = [sim.signal(f"{name}.flags{i}") for i in range(depth)]

        self._rp = 0
        self.flits_written = 0
        self.flits_read = 0
        clk.on_change(self._on_clk)
        spawn(sim, self._async_writer(), f"{name}.writer")
        self.adopt(self.in_ch)
        self.expose("clk", clk, "in")
        self.expose("flit_out", self.flit_out, "out")
        self.expose("valid", self.valid, "out")
        self.expose("stall", self.stall, "in")

    # ------------------------------------------------------------------
    # asynchronous write side (LE chain + C-element handshake)
    # ------------------------------------------------------------------
    def _async_writer(self) -> Generator:
        d = self.delays
        wp = 0
        while True:
            yield WaitValue(self.in_ch.req, 1)
            # wait until the target register has been drained
            yield WaitValue(self.flag_a[wp], 0)
            # LE(wp) opens: latch the word
            self.registers[wp].drive(
                self.in_ch.data.value, d.latch_en, inertial=True
            )
            yield Delay(d.latch_en + d.celement)
            self.flag_a[wp].set(1)
            self.flits_written += 1
            self.in_ch.ack.set(1)
            yield WaitValue(self.in_ch.req, 0)
            self.in_ch.ack.set(0)
            wp = (wp + 1) % self.depth

    # ------------------------------------------------------------------
    # synchronous read side
    # ------------------------------------------------------------------
    def _on_clk(self, sig: Signal) -> None:
        if not sig._value:
            return
        d = self.delays
        # two-FF synchronizer sampling of every flag (set path crosses
        # domains here; the synchronous clear below resets all stages)
        for i in range(self.depth):
            self.flag_s[i].drive(self._sync1[i]._value, d.dff_clk_q,
                                 inertial=True)
            self._sync1[i].drive(self.flag_a[i]._value, d.dff_clk_q,
                                 inertial=True)

        rp = self._rp
        if self.flag_s[rp]._value and not self.stall._value:
            self.flit_out.drive(self.registers[rp].value, d.dff_clk_q,
                                inertial=True)
            self.valid.drive(1, d.dff_clk_q, inertial=True)
            # synchronous clear: flag and both synchronizer stages
            self.flag_a[rp].drive(0, d.dff_clk_q, inertial=True)
            self._sync1[rp].drive(0, d.dff_clk_q, inertial=True)
            self.flag_s[rp].drive(0, d.dff_clk_q, inertial=True)
            self.flits_read += 1
            self._rp = (rp + 1) % self.depth
        else:
            self.valid.drive(0, d.dff_clk_q, inertial=True)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of registers currently holding an unconsumed flit."""
        return sum(flag.value for flag in self.flag_a)
