"""Token-level behavioural link models for NoC-scale simulation.

The gate-level assemblies in :mod:`repro.link.assemblies` are the ground
truth, but simulating a 4×4 mesh with gate-level links would burn
millions of events per microsecond.  :class:`BehavioralLinkParams`
captures what a switch-to-switch link looks like from the outside:

* ``latency_cycles`` — acceptance-to-delivery latency of one flit in
  switch clock cycles (pipeline fill for I1; domain crossing + serial
  transfer for I2/I3);
* ``rate_flits_per_cycle`` — sustained throughput cap (1.0 for I1; the
  serial ceiling divided by the clock rate for I2/I3, saturating at 1);
* ``capacity_flits`` — tokens in flight (the paper's 8: two 4-deep
  interface FIFOs; for I1, one per pipeline buffer);
* ``wire_count`` — physical wires, for the cost reporting.

Parameters are *derived from the same technology constants* as the
gate-level circuits, and the derivation is cross-checked against
gate-level measurements in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tech.technology import Technology
from .assemblies import LinkConfig


@dataclass(frozen=True)
class BehavioralLinkParams:
    """Externally observable behaviour of one link implementation."""

    kind: str
    latency_cycles: int
    rate_flits_per_cycle: float
    capacity_flits: int
    wire_count: int
    serial_ceiling_mflits: float

    def __post_init__(self) -> None:
        if self.latency_cycles < 1:
            raise ValueError("latency must be at least one cycle")
        if not (0.0 < self.rate_flits_per_cycle <= 1.0):
            raise ValueError("rate must be in (0, 1] flits/cycle")
        if self.capacity_flits < 1:
            raise ValueError("capacity must be positive")


def derive_link_params(
    tech: Technology,
    kind: str,
    freq_mhz: float,
    config: Optional[LinkConfig] = None,
) -> BehavioralLinkParams:
    """Compute behavioural parameters for ``kind`` at ``freq_mhz``.

    Latency accounting (cross-checked against gate-level runs):

    * I1 — one cycle per pipeline buffer plus the output register.
    * I2/I3 — one cycle to enter the synch→asynch FIFO, the serial
      cycle delay of one word, and 2.5 cycles for the two-flip-flop
      synchronizer plus read-out on the receiving side.
    """
    from ..analysis.timing import (
        per_transfer_cycle_delay,
        per_word_cycle_delay,
    )

    config = config or LinkConfig()
    kind = kind.upper()
    period_ns = 1e3 / freq_mhz
    n_slices = config.width // config.slice_width

    if kind == "I1":
        return BehavioralLinkParams(
            kind="I1",
            latency_cycles=config.n_buffers + 1,
            rate_flits_per_cycle=1.0,
            capacity_flits=config.n_buffers,
            wire_count=config.width,
            serial_ceiling_mflits=freq_mhz,
        )

    if kind == "I2":
        est = per_transfer_cycle_delay(
            tech.handshake, n_slices, config.n_buffers
        )
    elif kind == "I3":
        est = per_word_cycle_delay(
            tech.handshake, n_slices, config.n_buffers,
            config.inverters_per_station,
        )
    else:
        raise ValueError(f"unknown link kind {kind!r}")

    serial_ns = est.cycle_delay_ns
    latency_ns = period_ns + serial_ns + 2.5 * period_ns
    latency_cycles = max(1, round(latency_ns / period_ns))
    rate = min(1.0, (1e3 / serial_ns) / freq_mhz)
    return BehavioralLinkParams(
        kind=kind,
        latency_cycles=latency_cycles,
        rate_flits_per_cycle=rate,
        capacity_flits=2 * config.fifo_depth,
        wire_count=config.slice_width + 2,
        serial_ceiling_mflits=est.mflits,
    )


class TokenLink:
    """Cycle-driven FIFO link used by the NoC simulator.

    Flits enter with :meth:`try_send` (respecting rate and capacity) and
    emerge from :meth:`deliverable` after ``latency_cycles``.  The
    receiving switch pops them with :meth:`pop`; undelivered flits apply
    backpressure through the capacity bound.

    Credit accrual is *batchable*: per-cycle accrual clamps at
    ``1.0 + rate``, so an idle link's credit is a pure function of how
    many cycles have elapsed since its last send, and it saturates after
    at most ``ceil(cap / rate)`` steps.  :meth:`accrue_to` replays
    exactly the per-cycle ``min(credit + rate, cap)`` updates (the same
    float operations in the same order, so results stay bit-identical)
    but stops early once the clamp is reached — the network only calls
    it for links that might actually send this cycle, instead of
    touching every link every cycle.  ``_accruals`` counts how many
    per-cycle accruals have been applied since construction.
    """

    def __init__(self, params: BehavioralLinkParams, name: str = "link") -> None:
        self.params = params
        self.name = name
        self._in_flight: list[tuple[int, object]] = []  # (ready_cycle, flit)
        self._rate_credit = 0.0
        self._rate = params.rate_flits_per_cycle
        self._credit_cap = 1.0 + self._rate
        self._accruals = 0
        #: accrue_to calls that applied work (accruals / batches gives
        #: the mean catch-up batch size the lazy-accrual scheme earns)
        self._accrual_batches = 0
        self.flits_sent = 0
        self.flits_delivered = 0

    def begin_cycle(self) -> None:
        """Accrue rate credit for this cycle (call once per cycle)."""
        self.accrue_to(self._accruals + 1)

    def accrue_to(self, n_accruals: int) -> None:
        """Apply per-cycle credit accruals until ``n_accruals`` are done.

        Equivalent to calling :meth:`begin_cycle` the missing number of
        times; the loop exits as soon as the credit clamps at the cap,
        which bounds the work for long-idle links.
        """
        done = self._accruals
        if n_accruals <= done:
            return
        self._accrual_batches += 1
        credit = self._rate_credit
        cap = self._credit_cap
        if credit != cap:
            rate = self._rate
            steps = n_accruals - done
            while steps and credit != cap:
                credit = min(credit + rate, cap)
                steps -= 1
            self._rate_credit = credit
        self._accruals = n_accruals

    def can_send(self) -> bool:
        return (
            self._rate_credit >= 1.0
            and len(self._in_flight) < self.params.capacity_flits
        )

    def try_send(self, flit: object, now_cycle: int) -> bool:
        """Accept a flit if the link has rate credit and space."""
        if not self.can_send():
            return False
        self._rate_credit -= 1.0
        self._in_flight.append(
            (now_cycle + self.params.latency_cycles, flit)
        )
        self.flits_sent += 1
        return True

    def deliverable(self, now_cycle: int) -> bool:
        """True if the head flit has completed its traversal."""
        return bool(self._in_flight) and self._in_flight[0][0] <= now_cycle

    @property
    def next_deliverable_cycle(self) -> Optional[int]:
        """Cycle the head flit matures at, or None for an empty link.

        The network's active-link set uses this to turn the seed's
        per-cycle ``begin_cycle``/``deliverable`` polling of *every*
        link into a single integer comparison on in-flight links only.
        """
        in_flight = self._in_flight
        return in_flight[0][0] if in_flight else None

    def peek(self) -> object:
        return self._in_flight[0][1]

    def pop(self, now_cycle: int) -> object:
        if not self.deliverable(now_cycle):
            raise RuntimeError(f"{self.name}: no deliverable flit")
        _ready, flit = self._in_flight.pop(0)
        self.flits_delivered += 1
        return flit

    @property
    def occupancy(self) -> int:
        return len(self._in_flight)
