"""Word-level acknowledgement serializer/de-serializer (Fig 8, link I3).

Per-transfer acknowledgement costs one request/acknowledge round trip
*per slice*; the more a word is serialized, the more round trips.  The
word-level scheme instead:

* the transmitter emits all slices as a timed burst — a local ring
  oscillator spaces the VALID pulses (no clock, no per-slice ack);
* the wire carries data + VALID forward through simple inverter
  repeaters (no latching buffers);
* the receiver shifts slices into a shift register on each VALID pulse
  and acknowledges *once per word*;
* a one-bit pulse shift register of the same depth detects word
  completion and raises REQOUT.

:class:`WordSerializer` and :class:`WordDeserializer` reproduce Fig 8a/8b.
:class:`EarlyAckDeserializer` implements the paper's stated future work —
acknowledging before the final slice has landed, hiding the ack round
trip behind the tail of the burst.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.process import Delay, WaitValue, spawn
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays, HandshakeTimings
from ..elements.ringosc import RingOscillator
from ..elements.shiftreg import PulseShiftRegister, SliceShiftRegister
from .channel import Channel, ValidChannel
from .serializer import check_slicing


class WordSerializer(Component):
    """Fig 8a: burst transmitter with ring-oscillator timing.

    Input: four-phase m-bit channel (from the synch/asynch interface).
    Output: :class:`ValidChannel` — n-bit data + VALID pulse train, plus
    a word-level acknowledge wire coming back from the receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        in_ch: Channel,
        slice_width: int = 8,
        delays: Optional[GateDelays] = None,
        timings: Optional[HandshakeTimings] = None,
        osc_stages: int = 5,
        name: str = "wser",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.timings = timings or HandshakeTimings()
        self.in_ch = in_ch
        self.slice_width = slice_width
        self.n_slices = check_slicing(in_ch.width, slice_width)
        self.out_ch = ValidChannel(sim, slice_width, f"{name}.out")
        self.words_serialized = 0

        #: interval between slice launches; n slices fill Tburst
        self.slice_interval = max(2, self.timings.t_burst // self.n_slices)
        self.osc_enable = sim.signal(f"{name}.oscen")
        self.osc = RingOscillator(
            sim,
            self.osc_enable,
            stages=osc_stages,
            half_period_ps=max(1, self.slice_interval // 2),
            delays=self.delays,
            name=f"{name}.osc",
        )
        spawn(sim, self._run(), f"{name}.proc")
        self.adopt(self.osc)
        self.adopt(self.out_ch)

    def _slice(self, word: int, i: int) -> int:
        mask = (1 << self.slice_width) - 1
        return (word >> (i * self.slice_width)) & mask

    def _run(self) -> Generator:
        d = self.delays
        t = self.timings
        # VALID is tuned to rise only once DATA is stable (ring-oscillator
        # tap selection in the paper); one mux delay suffices here
        data_to_valid = d.mux2
        pulse_width = max(1, self.slice_interval // 2)
        tail = max(0, self.slice_interval - data_to_valid - pulse_width)
        while True:
            yield WaitValue(self.in_ch.req, 1)
            word = self.in_ch.data.value
            self.osc_enable.set(1)
            for i in range(self.n_slices):
                self.out_ch.data.set(self._slice(word, i))
                yield Delay(data_to_valid)
                self.out_ch.valid.set(1)
                yield Delay(pulse_width)
                self.out_ch.valid.set(0)
                yield Delay(tail)
            self.osc_enable.set(0)
            # word-level acknowledge round trip
            yield WaitValue(self.out_ch.ack, 1)
            # Tackout: acknowledge-in to new-flit-output internal chain
            yield Delay(t.t_ackout_i3)
            self.words_serialized += 1
            self.in_ch.ack.set(1)
            yield WaitValue(self.in_ch.req, 0)
            self.in_ch.ack.set(0)
            yield WaitValue(self.out_ch.ack, 0)


class WordDeserializer(Component):
    """Fig 8b: shift-register receiver with single word-level ack.

    ``in_ch`` is the :class:`ValidChannel` arriving over the repeated
    wires; ``out_ch`` is the four-phase m-bit channel into the
    asynch/synch interface; :attr:`ack_to_tx` is the word-level
    acknowledge wire routed back to the transmitter.

    All ``n`` slice registers clock on *every* VALID pulse — the paper
    calls out the resulting power cost against the mux-based Fig 6b
    design, and the activity counters here reproduce it.
    """

    def __init__(
        self,
        sim: Simulator,
        in_ch: ValidChannel,
        word_width: int = 32,
        delays: Optional[GateDelays] = None,
        timings: Optional[HandshakeTimings] = None,
        name: str = "wdes",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.timings = timings or HandshakeTimings()
        self.in_ch = in_ch
        self.word_width = word_width
        self.n_slices = check_slicing(word_width, in_ch.width)
        self.out_ch = Channel(sim, word_width, f"{name}.out")
        self.ack_to_tx = sim.signal(f"{name}.acktx")
        self.words_deserialized = 0

        self.clear = sim.signal(f"{name}.clear")
        self.slices = SliceShiftRegister(
            sim, in_ch.data, in_ch.valid, self.n_slices, self.delays,
            f"{name}.sreg",
        )
        self.pulses = PulseShiftRegister(
            sim, in_ch.valid, self.clear, self.n_slices, self.delays,
            f"{name}.preg",
        )
        spawn(sim, self._run(), f"{name}.proc")
        self.adopt(self.slices)
        self.adopt(self.pulses)
        self.adopt(self.out_ch)
        self.expose("ack_to_tx", self.ack_to_tx, "out")

    def _run(self) -> Generator:
        d = self.delays
        t = self.timings
        while True:
            yield WaitValue(self.pulses.done, 1)
            # Tvalidwordack: word-complete detection to acknowledge output
            yield Delay(t.t_validwordack)
            self.out_ch.data.set(self.slices.word)
            yield Delay(d.celement)
            self.words_deserialized += 1
            self.out_ch.req.set(1)
            self.ack_to_tx.set(1)
            yield WaitValue(self.out_ch.ack, 1)
            # downstream ACKIN clears the pulse register, dropping REQOUT
            self.clear.set(1)
            self.clear.drive(0, d.davidcell, inertial=False)
            self.out_ch.req.set(0)
            self.ack_to_tx.set(0)
            yield WaitValue(self.out_ch.ack, 0)
            yield WaitValue(self.pulses.done, 0)


class EarlyAckDeserializer(WordDeserializer):
    """Future-work extension: acknowledge before the burst completes.

    The standard receiver acknowledges only after the last slice has
    landed and the word has been checked in (Tvalidwordack), serializing
    the ack round trip with the burst.  Acknowledging when
    ``n_slices - early_by`` slices have arrived overlaps the round trip
    with the burst tail: the transmitter sees ACK earlier and can fetch
    the next flit while the final slices are still in flight.

    ``early_by`` must leave at least one slice to arrive (the ack must
    not outrun a burst that might still fail the bundling constraint).
    The word-side REQOUT handshake is unchanged — only :attr:`ack_to_tx`
    moves earlier.
    """

    def __init__(self, *args, early_by: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not (1 <= early_by < self.n_slices):
            raise ValueError(
                f"early_by must be in [1, {self.n_slices - 1}], got {early_by}"
            )
        self.early_by = early_by
        self._early_threshold = self.n_slices - early_by
        self._seen = 0
        self.in_ch.valid.on_change(self._count_valid)

    def _count_valid(self, sig: Signal) -> None:
        if not sig._value:
            return
        self._seen += 1
        if self._seen == self._early_threshold:
            self.ack_to_tx.set(1)

    def _run(self) -> Generator:
        d = self.delays
        t = self.timings
        while True:
            yield WaitValue(self.pulses.done, 1)
            yield Delay(t.t_validwordack)
            self.out_ch.data.set(self.slices.word)
            yield Delay(d.celement)
            self.words_deserialized += 1
            self.out_ch.req.set(1)
            yield WaitValue(self.out_ch.ack, 1)
            self.clear.set(1)
            self.clear.drive(0, d.davidcell, inertial=False)
            self.out_ch.req.set(0)
            self._seen = 0
            self.ack_to_tx.set(0)
            yield WaitValue(self.out_ch.ack, 0)
            yield WaitValue(self.pulses.done, 0)
