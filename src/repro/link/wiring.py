"""Wire models: transport-delay connections, repeaters, wire buffers.

Three kinds of inter-module wiring appear in the paper's links:

* plain point-to-point wires (Tp transport delay) — :func:`wire` /
  :func:`wire_bus`;
* the I2 *asynchronous wire buffer* chain: latch + four-phase controller
  per stage (:class:`AsyncWireBufferChain`, built from
  :class:`~repro.elements.fourphase.WireBufferStage`);
* the I3 *inverter repeater* wires: simple buffers/even inverter pairs
  along the wire, pure delay with switched capacitance but no handshake
  (:class:`RepeatedWireBus`).
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays
from ..elements.fourphase import WireBufferStage


def wire(src: Signal, dst: Signal, delay_ps: int = 0) -> None:
    """Connect ``src`` to ``dst`` with transport delay (a real wire).

    Transitions propagate independently — a wire never swallows pulses.
    """
    set0 = getattr(dst, "_set0_cb", None)
    if set0 is not None:
        # optimized-kernel fast path: schedule the destination's
        # prebuilt set-0/set-1 callbacks directly (identical semantics
        # to a transport drive, minus the dispatch call per transition)
        set1 = dst._set1_cb
        schedule = dst.sim.schedule

        def forward(sig: Signal) -> None:
            schedule(delay_ps, set1 if sig._value else set0)

    else:  # frozen reference kernel: generic transport drive

        def forward(sig: Signal) -> None:
            dst.drive(sig._value, delay_ps, inertial=False)

    src.on_change(forward)
    if src.value != dst.value:
        dst.drive(src.value, delay_ps, inertial=False)


def wire_bus(src: Bus, dst: Bus, delay_ps: int = 0) -> None:
    """Connect two equal-width buses bit by bit with transport delay."""
    if src.width != dst.width:
        raise ValueError(
            f"cannot wire {src.name}({src.width}) to {dst.name}({dst.width})"
        )
    for s, d in zip(src, dst):
        wire(s, d, delay_ps)


class RepeatedWireBus(Component):
    """An inverter-repeated wire bundle (the I3 buffer replacement).

    ``n_inverters`` even inverters (or simple buffers) are spread along
    each wire; the bundle contributes ``n_inverters × t_inv`` of delay
    and the intermediate nodes' switched capacitance, but no handshake —
    which is why the paper measures only 9 µW for the I3 "buffers"
    against 82 µW for I2's latching stages.

    The intermediate inverter nodes are modelled by giving the output
    nets a capacitance weight of ``1 + 0.2 × n_inverters``: each wire
    transition toggles every repeater node once, but a minimum-size
    inverter's node capacitance is a small fraction of the wire's — this
    is precisely why the paper measures only 9 µW here against 82 µW for
    the latching stages, whose enables and storage nodes all switch.
    """

    #: relative node capacitance of one repeater inverter vs the wire
    INVERTER_NODE_CAP = 0.2

    def __init__(
        self,
        sim: Simulator,
        src: Bus,
        n_inverters: int = 2,
        t_inv_ps: int = 11,
        name: str = "rwire",
    ) -> None:
        if n_inverters < 0 or n_inverters % 2:
            raise ValueError(
                f"repeater count must be even and >= 0, got {n_inverters}"
            )
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.n_inverters = n_inverters
        self.delay_ps = n_inverters * t_inv_ps
        self.out = sim.bus(src.width, f"{name}.out",
                       cap_ff=1.0 + self.INVERTER_NODE_CAP * n_inverters)
        wire_bus(src, self.out, self.delay_ps)
        self.expose("src", src, "in")
        self.expose("out", self.out, "out")


class RepeatedWire(Component):
    """Single-signal variant of :class:`RepeatedWireBus` (VALID/ACK wires)."""

    def __init__(
        self,
        sim: Simulator,
        src: Signal,
        n_inverters: int = 2,
        t_inv_ps: int = 11,
        name: str = "rwire",
    ) -> None:
        if n_inverters < 0 or n_inverters % 2:
            raise ValueError(
                f"repeater count must be even and >= 0, got {n_inverters}"
            )
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delay_ps = n_inverters * t_inv_ps
        self.out = sim.signal(
            f"{name}.out",
            cap_ff=1.0 + RepeatedWireBus.INVERTER_NODE_CAP * n_inverters,
        )
        wire(src, self.out, self.delay_ps)
        self.expose("src", src, "in")
        self.expose("out", self.out, "out")


class AsyncWireBufferChain(Component):
    """A chain of I2 wire-buffer stages with Tp wire segments between.

    Exposes a four-phase input (``req_in``/``ack_out``/``data_in``) and
    output (``req_out``/``ack_in``/``data_out``).  With the simple
    (undecoupled) latch controller, at best every other stage holds a
    token — the chain transports rather than stores, as the paper notes.
    """

    def __init__(
        self,
        sim: Simulator,
        data_in: Bus,
        req_in: Signal,
        n_buffers: int,
        t_p_ps: int = 0,
        delays: Optional[GateDelays] = None,
        ctl_delay_ps: Optional[int] = None,
        name: str = "bufchain",
    ) -> None:
        if n_buffers < 1:
            raise ValueError(f"need at least one buffer, got {n_buffers}")
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.n_buffers = n_buffers
        self.stages: list[WireBufferStage] = []

        cur_data, cur_req = data_in, req_in
        acks: list[Signal] = []
        for i in range(n_buffers):
            # wire segment (Tp) into the stage
            seg_data = sim.bus(data_in.width, f"{name}.w{i}.data")
            seg_req = sim.signal(f"{name}.w{i}.req")
            wire_bus(cur_data, seg_data, t_p_ps)
            wire(cur_req, seg_req, t_p_ps)
            ack_in = sim.signal(f"{name}.s{i}.ackin")
            stage = WireBufferStage(
                sim, seg_data, seg_req, ack_in, delays, ctl_delay_ps,
                f"{name}.s{i}",
            )
            self.stages.append(stage)
            acks.append(ack_in)
            cur_data, cur_req = stage.data_out, stage.req_out

        # final wire segment out of the chain
        self.data_out = sim.bus(data_in.width, f"{name}.dout")
        self.req_out = sim.signal(f"{name}.reqout")
        wire_bus(cur_data, self.data_out, t_p_ps)
        wire(cur_req, self.req_out, t_p_ps)

        # acknowledge path: downstream ack feeds the last stage; each
        # stage's ack_out feeds its predecessor's ack_in (with Tp)
        self.ack_in = sim.signal(f"{name}.ackin")
        wire(self.ack_in, acks[-1], t_p_ps)
        for i in range(n_buffers - 1):
            wire(self.stages[i + 1].ack_out, acks[i], t_p_ps)
        self.ack_out = self.stages[0].ack_out
        for stage in self.stages:
            self.adopt(stage)
        self.expose("data_in", data_in, "in")
        self.expose("req_in", req_in, "in")
        self.expose("data_out", self.data_out, "out")
        self.expose("req_out", self.req_out, "out")
        self.expose("ack_in", self.ack_in, "in")
        self.expose("ack_out", self.ack_out, "out")
