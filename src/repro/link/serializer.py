"""Per-transfer serializer and de-serializer (Fig 6 of the paper).

The serializer accepts an m-bit word on a four-phase bundled-data
channel and emits it as ``m / n`` slices of *n* bits each on a narrower
four-phase channel, every slice individually request/acknowledged.  A
David-cell one-hot sequencer steps through the slices (``SEL(0:3)`` in
Fig 6a) and a one-hot mux steers the selected slice to the output latch.

The de-serializer mirrors this: each incoming slice is latched into the
register selected by its own David-cell chain (``LE(0:3)`` in Fig 6b);
after the last slice the reassembled word is offered on the wide output
channel with a single handshake.

Both circuits generalize to any ``slice_width`` that divides the word
width — the paper notes the chains "can easily be modified" for other
slicing factors, and the ablation benchmarks sweep exactly that.

Slice order is LSB-first: ``DIN(7:0)`` travels first, as drawn in
Fig 6a, and the round-trip property tests pin the pairing.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.process import Delay, WaitValue
from ..sim.signal import Bus, Signal
from ..sim.process import spawn
from ..tech.technology import GateDelays
from ..elements.davidcell import OneHotSequencer
from ..elements.gates import OneHotMux
from .channel import Channel


def check_slicing(word_width: int, slice_width: int) -> int:
    """Validate the word/slice widths; returns the number of slices."""
    if slice_width <= 0 or word_width <= 0:
        raise ValueError(
            f"widths must be positive: word={word_width} slice={slice_width}"
        )
    if word_width % slice_width:
        raise ValueError(
            f"slice width {slice_width} does not divide word width {word_width}"
        )
    return word_width // slice_width


class Serializer(Component):
    """Fig 6a: m-bit channel in, n-bit channel out, per-slice handshakes."""

    def __init__(
        self,
        sim: Simulator,
        in_ch: Channel,
        slice_width: int = 8,
        delays: Optional[GateDelays] = None,
        name: str = "ser",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.in_ch = in_ch
        self.slice_width = slice_width
        self.n_slices = check_slicing(in_ch.width, slice_width)
        self.out_ch = Channel(sim, slice_width, f"{name}.out")
        self.words_serialized = 0

        if self.n_slices > 1:
            # SEL(0:n-1) David-cell chain and the slice mux it steers
            self.sequencer = OneHotSequencer(
                sim, self.n_slices, self.delays, f"{name}.seq"
            )
            slices = [
                sim.bus_view(
                    in_ch.data.slice(
                        i * slice_width, (i + 1) * slice_width - 1
                    ),
                    f"{name}.slice{i}",
                )
                for i in range(self.n_slices)
            ]
            self.mux = OneHotMux(
                sim,
                slices,
                self.sequencer.sel,
                self.out_ch.data,
                self.delays,
                f"{name}.mux",
            )
        else:
            # degenerate 1:1 configuration — no sequencing, plain relay
            self.sequencer = None
            self.mux = None
            from .wiring import wire_bus

            wire_bus(in_ch.data, self.out_ch.data, self.delays.mux2)
        spawn(sim, self._run(), f"{name}.proc")
        if self.sequencer is not None:
            self.adopt(self.sequencer)
            self.adopt(self.mux)
        self.adopt(self.out_ch)

    def _run(self) -> Generator:
        d = self.delays
        # data must be stable on the narrow bundle before REQOUT rises:
        # mux settling plus the control C-element
        setup = d.mux2 + d.celement
        while True:
            yield WaitValue(self.in_ch.req, 1)
            for _ in range(self.n_slices):
                yield Delay(setup)
                self.out_ch.req.set(1)
                yield WaitValue(self.out_ch.ack, 1)
                self.out_ch.req.set(0)
                yield WaitValue(self.out_ch.ack, 0)
                if self.sequencer is not None:
                    # advance SEL to the next slice (token passes on)
                    self.sequencer.advance.set(1)
                    self.sequencer.advance.drive(
                        0, d.davidcell, inertial=False
                    )
                    yield Delay(2 * d.davidcell)
            self.words_serialized += 1
            self.in_ch.ack.set(1)
            yield WaitValue(self.in_ch.req, 0)
            self.in_ch.ack.set(0)


class Deserializer(Component):
    """Fig 6b: n-bit channel in, m-bit channel out, mux/latch based."""

    def __init__(
        self,
        sim: Simulator,
        in_ch: Channel,
        word_width: int = 32,
        delays: Optional[GateDelays] = None,
        name: str = "des",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.in_ch = in_ch
        self.word_width = word_width
        self.slice_width = in_ch.width
        self.n_slices = check_slicing(word_width, in_ch.width)
        self.out_ch = Channel(sim, word_width, f"{name}.out")
        self.words_deserialized = 0

        # LE(0:n-1) latch registers, one per slice position
        self.stores = [
            sim.bus(self.slice_width, f"{name}.le{i}")
            for i in range(self.n_slices)
        ]
        self.le_sequencer = (
            OneHotSequencer(sim, self.n_slices, self.delays, f"{name}.seq")
            if self.n_slices > 1
            else None
        )
        spawn(sim, self._run(), f"{name}.proc")
        if self.le_sequencer is not None:
            self.adopt(self.le_sequencer)
        self.adopt(self.out_ch)

    def _run(self) -> Generator:
        d = self.delays
        while True:
            for i in range(self.n_slices):
                yield WaitValue(self.in_ch.req, 1)
                # the LE(i) C-element opens the latch for this slice
                self.stores[i].drive(
                    self.in_ch.data.value, d.latch_en, inertial=True
                )
                yield Delay(d.celement + d.latch_en)
                self.in_ch.ack.set(1)
                yield WaitValue(self.in_ch.req, 0)
                self.in_ch.ack.set(0)
                if self.le_sequencer is not None:
                    self.le_sequencer.advance.set(1)
                    self.le_sequencer.advance.drive(
                        0, d.davidcell, inertial=False
                    )
                    yield Delay(2 * d.davidcell)
            word = 0
            for i, store in enumerate(self.stores):
                word |= store.value << (i * self.slice_width)
            self.out_ch.data.set(word)
            yield Delay(d.celement)
            self.words_deserialized += 1
            self.out_ch.req.set(1)
            yield WaitValue(self.out_ch.ack, 1)
            self.out_ch.req.set(0)
            yield WaitValue(self.out_ch.ack, 0)
