"""Synchronous baseline link (implementation I1, Figs 1a / 9 top).

Two switches connected by a full-width wire segmented by clocked
pipeline buffers: every buffer is an m-bit register bank on the global
switch clock.  Throughput is one flit per clock; latency is one cycle
per buffer stage.  All stages freeze when the receiving switch stalls.

This is the reference the paper measures against: its wire count is the
full flit width (32), and its power grows linearly with both the buffer
count and the clock frequency — the activity counters on the stage
registers reproduce exactly that growth.
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays


class SyncPipelineLink(Component):
    """Clocked pipeline of ``n_buffers`` full-width register stages.

    Port convention (shared by all three link implementations):

    * transmit side: ``flit_in`` + ``valid_in`` from the switch,
      ``stall_out`` back to it (here: high only while frozen);
    * receive side: ``flit_out`` + ``valid_out`` to the switch,
      ``stall_in`` from it.
    """

    def __init__(
        self,
        sim: Simulator,
        clk: Signal,
        width: int = 32,
        n_buffers: int = 4,
        delays: Optional[GateDelays] = None,
        name: str = "i1",
    ) -> None:
        if n_buffers < 1:
            raise ValueError(f"need at least one buffer, got {n_buffers}")
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.delays = delays or GateDelays()
        self.clk = clk
        self.width = width
        self.n_buffers = n_buffers

        self.flit_in = sim.bus(width, f"{name}.flitin")
        self.valid_in = sim.signal(f"{name}.validin")
        self.stall_out = sim.signal(f"{name}.stallout")

        self.flit_out = sim.bus(width, f"{name}.flitout")
        self.valid_out = sim.signal(f"{name}.validout")
        self.stall_in = sim.signal(f"{name}.stallin")

        # pipeline stages: data register + valid flop per buffer
        self.stage_data = [
            sim.bus(width, f"{name}.st{i}.data") for i in range(n_buffers)
        ]
        self.stage_valid = [
            sim.signal(f"{name}.st{i}.valid") for i in range(n_buffers)
        ]

        self.flits_written = 0
        self.flits_delivered = 0
        clk.on_change(self._on_clk)
        self.expose("clk", clk, "in")
        self.expose("flit_in", self.flit_in, "in")
        self.expose("valid_in", self.valid_in, "in")
        self.expose("stall_out", self.stall_out, "out")
        self.expose("flit_out", self.flit_out, "out")
        self.expose("valid_out", self.valid_out, "out")
        self.expose("stall_in", self.stall_in, "in")

    @property
    def wire_count(self) -> int:
        """Data wires between the switches (the paper counts these)."""
        return self.width

    def _on_clk(self, sig: Signal) -> None:
        if not sig._value:
            return
        d = self.delays
        if self.stall_in._value:
            # whole pipeline freezes; upstream must hold its flit
            self.stall_out.drive(1, d.dff_clk_q, inertial=True)
            return
        self.stall_out.drive(0, d.dff_clk_q, inertial=True)

        # capture pre-edge values, then shift (two-phase update)
        data_vals = [bus.value for bus in self.stage_data]
        valid_vals = [s._value for s in self.stage_valid]

        # output stage → receiving switch
        last = self.n_buffers - 1
        self.flit_out.drive(data_vals[last], d.dff_clk_q, inertial=True)
        self.valid_out.drive(valid_vals[last], d.dff_clk_q, inertial=True)
        if valid_vals[last]:
            self.flits_delivered += 1

        # internal shift
        for i in range(last, 0, -1):
            self.stage_data[i].drive(data_vals[i - 1], d.dff_clk_q,
                                     inertial=True)
            self.stage_valid[i].drive(valid_vals[i - 1], d.dff_clk_q,
                                      inertial=True)

        # input stage ← transmitting switch
        if self.valid_in._value:
            self.stage_data[0].drive(self.flit_in.value, d.dff_clk_q,
                                     inertial=True)
            self.stage_valid[0].drive(1, d.dff_clk_q, inertial=True)
            self.flits_written += 1
        else:
            self.stage_valid[0].drive(0, d.dff_clk_q, inertial=True)
