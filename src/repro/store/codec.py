"""JSON (de)serialization of engine outcomes.

The store and the sweep journal both persist :class:`RunOutcome`
values; this module is the single round-trip codec they share.  The
encoding is loss-free for everything the artifact writer consumes —
reconstructed outcomes produce byte-identical CSV/JSON artifacts —
which is what makes ``sweep --resume`` safe: a resumed sweep finishes
from journaled outcomes and nobody can tell from the output tree.

Only JSON-native cell values (str/int/float/bool/None) survive
verbatim; anything else is stringified, which is exactly what the CSV
writer would have done to it anyway.

Records also carry *volatile* observability fields — per-point wall
duration, monotonic completion stamp, kernel counter deltas — which
two otherwise identical runs will disagree on.  They are quarantined
in :data:`VOLATILE_FIELDS`: readers tolerate their absence (old
journals load fine), and :func:`strip_volatile` removes them wherever
byte-level determinism is being compared.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from ..experiments.common import Check, ExperimentResult
from ..runner.engine import RunOutcome, RunRequest

#: bump when the record layout changes incompatibly
RECORD_VERSION = 1

#: additive integrity field on persisted records; readers tolerate its
#: absence (old journals/stores verify as "unchecksummed", not corrupt)
CHECKSUM_FIELD = "sha256"

#: record keys that vary between identical runs (observability
#: side-band); everything else is part of the deterministic contract
VOLATILE_FIELDS = frozenset({"duration_s", "t_mono", "metrics"})

_SCALARS = (str, int, float, bool)


def _cell(value: object) -> object:
    if value is None or isinstance(value, _SCALARS):
        return value
    return str(value)


def result_to_dict(result: Optional[ExperimentResult]) -> Optional[dict]:
    """Encode an experiment result (``None`` passes through)."""
    if result is None:
        return None
    return {
        "experiment_id": result.experiment_id,
        "description": result.description,
        "headers": [_cell(h) for h in result.headers],
        "rows": [[_cell(c) for c in row] for row in result.rows],
        "checks": [
            {
                "name": c.name,
                "measured": c.measured,
                "paper": c.paper,
                "tolerance": c.tolerance,
                "mode": c.mode,
            }
            for c in result.checks
        ],
        "notes": result.notes,
    }


def result_from_dict(data: Optional[dict]) -> Optional[ExperimentResult]:
    if data is None:
        return None
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        description=data["description"],
        headers=tuple(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        checks=[
            Check(
                name=c["name"],
                measured=c["measured"],
                paper=c["paper"],
                tolerance=c["tolerance"],
                mode=c["mode"],
            )
            for c in data["checks"]
        ],
        notes=data.get("notes", ""),
    )


def outcome_to_record(outcome: RunOutcome) -> Dict[str, object]:
    """Encode one outcome (request + result-or-error) as a JSON dict."""
    request = outcome.request
    result = outcome.result
    if result is not None and not isinstance(result, ExperimentResult):
        raise TypeError(
            f"cannot encode result of type {type(result).__name__}; "
            f"scenarios must return ExperimentResult"
        )
    record: Dict[str, object] = {
        "version": RECORD_VERSION,
        "scenario": request.scenario_id,
        "params": [[name, value] for name, value in request.params],
        "fast": request.fast,
        "error": outcome.error,
        "resolved_params": {
            name: _cell(value)
            for name, value in outcome.resolved_params.items()
        },
        "result": result_to_dict(result),
    }
    if outcome.duration_s is not None:
        record["duration_s"] = outcome.duration_s
    if outcome.t_mono is not None:
        record["t_mono"] = outcome.t_mono
    if outcome.metrics:
        record["metrics"] = dict(outcome.metrics)
    return record


def outcome_from_record(record: Dict[str, object]) -> RunOutcome:
    """Rebuild the outcome; the request hashes/compares like the original."""
    request = RunRequest(
        scenario_id=record["scenario"],
        params=tuple(sorted((name, value) for name, value in record["params"])),
        fast=record["fast"],
    )
    return RunOutcome(
        request=request,
        result=result_from_dict(record.get("result")),
        error=record.get("error", ""),
        resolved_params=dict(record.get("resolved_params") or {}),
        # volatile observability fields: absent in old records
        duration_s=record.get("duration_s"),
        t_mono=record.get("t_mono"),
        metrics=dict(record.get("metrics") or {}),
    )


def record_params(record: Dict[str, object]) -> List[list]:
    """The record's raw ``[name, value]`` pairs (display helper)."""
    return [list(pair) for pair in record.get("params", [])]


def strip_volatile(record: Dict[str, object]) -> Dict[str, object]:
    """The record minus :data:`VOLATILE_FIELDS` — the deterministic
    part two identical runs must agree on byte-for-byte."""
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def integrity_hash(record: Dict[str, object]) -> str:
    """sha256 over the record's deterministic body.

    Volatile fields and the checksum field itself are excluded, so the
    hash is stable across identical reruns and across append/rewrite —
    the same property :func:`strip_volatile` gives byte comparisons.
    """
    body = {
        k: v
        for k, v in record.items()
        if k != CHECKSUM_FIELD and k not in VOLATILE_FIELDS
    }
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def attach_hash(record: Dict[str, object]) -> Dict[str, object]:
    """Stamp the record with its integrity hash (mutates and returns)."""
    record[CHECKSUM_FIELD] = integrity_hash(record)
    return record


def verify_hash(record: Dict[str, object]) -> Optional[bool]:
    """``True``/``False`` for a (mis)matching checksum, ``None`` if the
    record predates checksums (absent field: tolerated, not corrupt)."""
    if not isinstance(record, dict):
        return False
    stated = record.get(CHECKSUM_FIELD)
    if stated is None:
        return None
    return stated == integrity_hash(record)
