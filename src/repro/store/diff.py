"""Structured comparison of two sweep artifact trees.

Compares two ``summary.json`` trees (as written by
:func:`repro.runner.artifacts.write_artifacts`) point by point and
reports, in order of severity:

* **new failures** — points whose checks passed (or that succeeded)
  before and fail (or raise) now;
* **removed points** — present in the baseline, missing now (a shrunk
  sweep reads as a regression in CI: coverage silently lost);
* **check drift** — a check's *measured* value moved relative to the
  baseline by more than the tolerance (the check's own recorded
  tolerance by default, or an explicit override);
* **fixed points / added points** — informational;
* **row deltas** — cell-level changes in the result tables, resolved
  from the ``rows.csv`` files when both trees carry them.

``regressed`` (new failures, removed points, or drift) is what the
CLI's ``repro diff`` exit status reflects — the regression gate in CI
is one subprocess call.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

PointId = Tuple[str, str]  # (scenario id, point slug)


def _point_label(point: PointId) -> str:
    scenario, slug = point
    return f"{scenario}/{slug}"


@dataclass
class CheckDrift:
    """One check whose measured value moved beyond tolerance."""

    point: PointId
    check: str
    old: float
    new: float
    drift: float  # relative to the old measured value
    tolerance: float


@dataclass
class RowDelta:
    """One changed cell in a point's result table."""

    point: PointId
    row: int
    column: str
    old: object
    new: object


@dataclass
class DiffReport:
    """Everything that differs between two artifact trees."""

    new_failures: List[PointId] = field(default_factory=list)
    fixed: List[PointId] = field(default_factory=list)
    removed: List[PointId] = field(default_factory=list)
    added: List[PointId] = field(default_factory=list)
    #: checks a shared point carried in the baseline but not any more —
    #: silently dropped verification coverage
    removed_checks: List[Tuple[PointId, str]] = field(default_factory=list)
    check_drift: List[CheckDrift] = field(default_factory=list)
    row_deltas: List[RowDelta] = field(default_factory=list)
    points_compared: int = 0

    @property
    def regressed(self) -> bool:
        """True when the new tree is *worse*: gate on this in CI."""
        return bool(
            self.new_failures or self.removed or self.removed_checks
            or self.check_drift
        )

    def render(self) -> str:
        from ..analysis.report import format_table

        parts: List[str] = []
        if self.new_failures:
            parts.append("NEW FAILURES (passed before, fail now):")
            parts.extend(f"  {_point_label(p)}" for p in self.new_failures)
        if self.removed:
            parts.append("REMOVED POINTS (in baseline, missing now):")
            parts.extend(f"  {_point_label(p)}" for p in self.removed)
        if self.removed_checks:
            parts.append("REMOVED CHECKS (coverage silently dropped):")
            parts.extend(
                f"  {_point_label(p)}: {name}"
                for p, name in self.removed_checks
            )
        if self.check_drift:
            rows = [
                [
                    _point_label(d.point),
                    d.check,
                    f"{d.old:.6g}",
                    f"{d.new:.6g}",
                    f"{100 * d.drift:+.2f}%",
                    f"{100 * d.tolerance:.1f}%",
                ]
                for d in self.check_drift
            ]
            parts.append(format_table(
                ("point", "check", "old", "new", "drift", "tolerance"),
                rows,
                title="check drift beyond tolerance",
            ))
        if self.fixed:
            parts.append("fixed (failed before, pass now):")
            parts.extend(f"  {_point_label(p)}" for p in self.fixed)
        if self.added:
            parts.append("added points:")
            parts.extend(f"  {_point_label(p)}" for p in self.added)
        if self.row_deltas:
            rows = [
                [_point_label(d.point), str(d.row), d.column,
                 str(d.old), str(d.new)]
                for d in self.row_deltas
            ]
            parts.append(format_table(
                ("point", "row", "column", "old", "new"),
                rows,
                title="result-table deltas",
            ))
        verdict = (
            "REGRESSED" if self.regressed
            else f"no regressions across {self.points_compared} shared point(s)"
        )
        parts.append(verdict)
        return "\n".join(parts)


# ----------------------------------------------------------------------
def load_summary(path) -> Tuple[dict, Path]:
    """Load a ``summary.json`` given the file or its directory.

    Returns the parsed summary and the base directory the run records'
    relative CSV paths resolve against.
    """
    p = Path(path)
    if p.is_dir():
        p = p / "summary.json"
    if not p.is_file():
        raise FileNotFoundError(f"no summary.json at {path}")
    return json.loads(p.read_text(encoding="utf-8")), p.parent


def _index(summary: dict) -> Dict[PointId, dict]:
    return {
        (run["scenario"], run["point"]): run
        for run in summary.get("runs", [])
    }


def _relative_drift(old: float, new: float) -> float:
    if old == new:
        return 0.0
    if old == 0:
        return math.inf
    return (new - old) / abs(old)


def _numeric(cell: object) -> Optional[float]:
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def _cells_equal(old: object, new: object) -> bool:
    if str(old) == str(new):
        return True
    old_n, new_n = _numeric(old), _numeric(new)
    return old_n is not None and new_n is not None and old_n == new_n


def _rows_deltas(
    point: PointId, old_run: dict, new_run: dict,
    old_base: Path, new_base: Path,
) -> List[RowDelta]:
    """Cell-level table comparison, when both trees carry the CSVs."""
    rel_old, rel_new = old_run.get("rows_csv"), new_run.get("rows_csv")
    if not rel_old or not rel_new:
        return []
    old_path, new_path = old_base / rel_old, new_base / rel_new
    if not (old_path.is_file() and new_path.is_file()):
        return []
    with old_path.open(newline="", encoding="utf-8") as fh:
        old_rows = list(csv.reader(fh))
    with new_path.open(newline="", encoding="utf-8") as fh:
        new_rows = list(csv.reader(fh))
    if not old_rows or not new_rows:
        return []
    header = old_rows[0]
    deltas = []
    for row_idx in range(max(len(old_rows), len(new_rows)) - 1):
        old_row = old_rows[row_idx + 1] if row_idx + 1 < len(old_rows) else []
        new_row = new_rows[row_idx + 1] if row_idx + 1 < len(new_rows) else []
        for col_idx in range(max(len(old_row), len(new_row))):
            old_cell = old_row[col_idx] if col_idx < len(old_row) else ""
            new_cell = new_row[col_idx] if col_idx < len(new_row) else ""
            if not _cells_equal(old_cell, new_cell):
                column = (
                    header[col_idx] if col_idx < len(header)
                    else f"col{col_idx}"
                )
                deltas.append(RowDelta(
                    point=point, row=row_idx, column=column,
                    old=old_cell, new=new_cell,
                ))
    return deltas


def diff_trees(
    old_path,
    new_path,
    drift_tolerance: Optional[float] = None,
) -> DiffReport:
    """Compare two artifact trees (directories or summary.json paths).

    ``drift_tolerance`` overrides every check's own tolerance for the
    measured-value drift comparison; ``None`` keeps the per-check
    tolerances recorded in the *new* summary.
    """
    old_summary, old_base = load_summary(old_path)
    new_summary, new_base = load_summary(new_path)
    old_runs, new_runs = _index(old_summary), _index(new_summary)
    report = DiffReport()
    report.removed = sorted(set(old_runs) - set(new_runs))
    report.added = sorted(set(new_runs) - set(old_runs))
    for point in sorted(set(old_runs) & set(new_runs)):
        old_run, new_run = old_runs[point], new_runs[point]
        report.points_compared += 1
        if old_run["ok"] and not new_run["ok"]:
            report.new_failures.append(point)
        elif not old_run["ok"] and new_run["ok"]:
            report.fixed.append(point)
        old_checks = {c["name"]: c for c in old_run.get("checks", [])}
        new_names = {c["name"] for c in new_run.get("checks", [])}
        report.removed_checks.extend(
            (point, name) for name in sorted(old_checks)
            if name not in new_names
        )
        for check in new_run.get("checks", []):
            before = old_checks.get(check["name"])
            if before is None:
                continue
            tolerance = (
                drift_tolerance if drift_tolerance is not None
                else check.get("tolerance", 0.0)
            )
            drift = _relative_drift(before["measured"], check["measured"])
            if abs(drift) > tolerance:
                report.check_drift.append(CheckDrift(
                    point=point,
                    check=check["name"],
                    old=before["measured"],
                    new=check["measured"],
                    drift=drift,
                    tolerance=tolerance,
                ))
        report.row_deltas.extend(
            _rows_deltas(point, old_run, new_run, old_base, new_base)
        )
    return report
