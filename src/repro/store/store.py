"""Content-addressed, on-disk run store.

Every stored outcome is keyed by the sha-256 of its *identity*: the
scenario id, the coerced parameter overrides, the fast flag, and a
fingerprint of the package's own source code.  Two consequences:

* "is this point already done?" is one ``exists()`` — the sweep CLI
  uses it (``--store``) to skip grid points that any earlier sweep on
  the same code already computed;
* editing any source file changes the fingerprint, so stale results
  can never be served for new code — the store is self-invalidating
  across commits, which is what makes cross-commit ``repro diff``
  trustworthy.

Layout (git-friendly, one JSON object per run)::

    <root>/objects/<key[:2]>/<key>.json

Only successful executions are stored (a run whose *checks* failed is
still a valid, cacheable result; a run that *raised* is not — it holds
no data worth serving).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..runner.engine import RunOutcome, RunRequest
from . import codec

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Stable hash of every ``.py`` source file in the repro package.

    Computed once per process; 16 hex chars is plenty to distinguish
    commits while staying readable in ``repro history`` output.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


def request_key(request: RunRequest, fingerprint: Optional[str] = None) -> str:
    """Content address of one run: scenario + params + fast + code."""
    payload = json.dumps(
        {
            "scenario": request.scenario_id,
            "params": [[name, value] for name, value in request.params],
            "fast": request.fast,
            "fingerprint": fingerprint or code_fingerprint(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class RunStore:
    """Persistent map from run identity to its recorded outcome."""

    def __init__(self, root, fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()

    # ------------------------------------------------------------------
    def key(self, request: RunRequest) -> str:
        return request_key(request, self.fingerprint)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def __contains__(self, request: RunRequest) -> bool:
        return self._object_path(self.key(request)).exists()

    def get(self, request: RunRequest) -> Optional[RunOutcome]:
        """The stored outcome for this exact identity, or ``None``."""
        path = self._object_path(self.key(request))
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None  # unreadable object: treat as a miss, re-execute
        if codec.verify_hash(record) is False:
            # bit rot under the content address — self-healing: report a
            # miss so the caller recomputes and put() replaces the object
            return None
        return codec.outcome_from_record(record)

    def put(self, outcome: RunOutcome) -> str:
        """Store a successful execution; returns its key.

        Raising scenarios are rejected — cache entries must hold a
        result, and a deterministic failure re-raises identically on
        re-execution anyway.
        """
        if outcome.error:
            raise ValueError(
                f"refusing to store failed outcome of "
                f"{outcome.request.scenario_id!r}: cache entries must "
                f"hold a result"
            )
        from ..runner.artifacts import point_slug

        key = self.key(outcome.request)
        # store objects are content-addressed and compared across runs,
        # so the volatile observability fields (durations, timestamps,
        # counter deltas) stay out — a cache hit replays the result,
        # not the weather of the run that produced it
        record = codec.attach_hash({
            "key": key,
            "fingerprint": self.fingerprint,
            "point": point_slug(outcome),
            **codec.strip_volatile(codec.outcome_to_record(outcome)),
        })
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # atomic publish: a reader never sees a half-written object, and
        # the pid suffix keeps concurrent writers (sweeps sharing a
        # store) from clobbering each other's temp file
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return key

    # ------------------------------------------------------------------
    def records(self) -> Iterator[Dict[str, object]]:
        """Every stored record, in deterministic (key) order."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.rglob("*.json")):
            yield json.loads(path.read_text(encoding="utf-8"))

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
