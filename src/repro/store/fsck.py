"""Integrity checking and repair for sweep artifacts and fabric state.

``repro fsck <dir>`` walks whatever durable state the directory holds —
sweep journals, telemetry streams, run-store objects, and fabric
control-plane files (plan, leases, published results, per-worker
segments) — verifies every record it finds (structure + the additive
sha256 checksums stamped by the writers), and repairs what it safely
can:

* **torn tails** (a writer killed mid-append) are truncated away, the
  damaged bytes preserved in the quarantine sidecar;
* **corrupt interior lines** (bit rot, an in-place scribble) are
  quarantined and the file rewritten from its remaining valid lines —
  unlike the readers' conservative stop-at-damage rule, fsck keeps the
  valid lines *after* the damage too, so nothing intact is lost;
* **corrupt store objects / published result records** are moved whole
  into the quarantine sidecar (the store treats the miss as "not yet
  computed" and heals on the next sweep);
* **stale lease debris** (unreadable records, expired leases, leases
  whose every point already published) is quarantined or removed so a
  resumed fabric doesn't trip over ghosts.

Nothing valid is ever deleted, and every removed byte lands in
``fsck-quarantine/`` first — fsck is safe to run on a tree you still
care about.  ``repair=False`` (CLI ``--dry-run``) only reports.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from . import codec
from .journal import FILENAME as JOURNAL_FILENAME

#: sidecar directory (under the fsck root) holding quarantined bytes
QUARANTINE_DIRNAME = "fsck-quarantine"

#: telemetry stream line kinds the obs layer writes
_TELEMETRY_KINDS = {"header", "point", "summary"}


@dataclass(frozen=True)
class Issue:
    """One problem fsck found, and what it did (or would do) about it."""

    path: str  # relative to the fsck root
    kind: str  # corruption class, e.g. "torn-tail", "bad-checksum"
    detail: str
    action: str  # "truncated" | "quarantined" | "removed" | "reported"

    def render(self) -> str:
        return f"{self.kind:<16} {self.path}: {self.detail} [{self.action}]"


@dataclass
class FsckReport:
    root: str
    repaired: bool  # False for a dry run
    issues: List[Issue] = field(default_factory=list)
    files_checked: int = 0
    records_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def ok(self) -> bool:
        """True when every issue was actually handled (repair mode and
        nothing left in the "reported" (unrepairable) state)."""
        if not self.repaired:
            return self.clean
        return all(issue.action != "reported" for issue in self.issues)

    def to_json(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "repaired": self.repaired,
            "files_checked": self.files_checked,
            "records_checked": self.records_checked,
            "clean": self.clean,
            "ok": self.ok,
            "issues": [
                {
                    "path": i.path,
                    "kind": i.kind,
                    "detail": i.detail,
                    "action": i.action,
                }
                for i in self.issues
            ],
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.root}: {self.files_checked} file(s), "
            f"{self.records_checked} record(s) checked"
        ]
        for issue in self.issues:
            lines.append("  " + issue.render())
        if self.clean:
            lines.append("  clean")
        elif self.repaired:
            lines.append(
                f"  {len(self.issues)} issue(s) "
                + ("repaired" if self.ok else "found; some NOT repairable")
            )
        else:
            lines.append(f"  {len(self.issues)} issue(s) found (dry run)")
        return "\n".join(lines)


class _Fsck:
    def __init__(self, root: Path, repair: bool,
                 quarantine_dir: Optional[Path]) -> None:
        self.root = root
        self.repair = repair
        self.qdir = quarantine_dir or (root / QUARANTINE_DIRNAME)
        self.report = FsckReport(root=str(root), repaired=repair)

    # ------------------------------------------------------------------
    def _rel(self, path: Path) -> str:
        try:
            return str(path.relative_to(self.root))
        except ValueError:
            return str(path)

    def _issue(self, path: Path, kind: str, detail: str,
               action: str) -> None:
        self.report.issues.append(
            Issue(path=self._rel(path), kind=kind, detail=detail,
                  action=action)
        )

    def _quarantine_bytes(self, source: Path, tag: str,
                          payload: bytes) -> None:
        if not self.repair:
            return
        self.qdir.mkdir(parents=True, exist_ok=True)
        name = self._rel(source).replace("/", "__") + f".{tag}"
        (self.qdir / name).write_bytes(payload)

    def _quarantine_file(self, path: Path) -> None:
        if not self.repair:
            return
        self._quarantine_bytes(path, "file", path.read_bytes())
        path.unlink()

    # -- line-oriented files (journal, telemetry) ----------------------
    def _check_line_file(self, path: Path, checker) -> None:
        """Validate a JSONL file line by line; repair in place.

        ``checker(entry, lineno)`` returns an error string for a parsed
        but invalid entry, or ``None``.  Invalid tail lines are
        truncated, invalid interior lines quarantined; either way the
        file is rewritten from exactly its valid lines.
        """
        self.report.files_checked += 1
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        keep: List[bytes] = []
        dirty = False
        for i, line in enumerate(lines):
            entry = None
            problem = None
            if not line.endswith(b"\n"):
                problem = "not newline-terminated (torn write)"
            else:
                try:
                    entry = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    problem = "unparseable JSON"
            if entry is not None and problem is None:
                self.report.records_checked += 1
                problem = checker(entry, i)
            if problem is None:
                keep.append(line)
                continue
            dirty = True
            is_tail = i == len(lines) - 1
            kind = "torn-tail" if is_tail else "corrupt-line"
            action = ("truncated" if is_tail else "quarantined") \
                if self.repair else "reported"
            self._issue(path, kind, f"line {i + 1}: {problem}", action)
            self._quarantine_bytes(path, f"line{i + 1}", line)
        if self.repair and dirty:
            tmp = path.with_name(path.name + ".fsck.tmp")
            tmp.write_bytes(b"".join(keep))
            tmp.replace(path)

    def _journal_entry(self, entry: object, lineno: int) -> Optional[str]:
        if not isinstance(entry, dict):
            return "not a JSON object"
        if codec.verify_hash(entry) is False:
            return "checksum mismatch"
        kind = entry.get("kind")
        if lineno == 0:
            return None if kind == "header" else "first line is not a header"
        if kind not in {"header", "outcome"}:
            return f"unknown journal line kind {kind!r}"
        if kind == "outcome":
            try:
                codec.outcome_from_record(entry)
            except (KeyError, TypeError, ValueError) as exc:
                return f"undecodable outcome ({exc})"
        return None

    def _telemetry_entry(self, entry: object, lineno: int) -> Optional[str]:
        if not isinstance(entry, dict):
            return "not a JSON object"
        kind = entry.get("kind")
        if kind not in _TELEMETRY_KINDS:
            return f"unknown telemetry line kind {kind!r}"
        return None

    # -- whole-file JSON records ---------------------------------------
    def _load_record(self, path: Path) -> Optional[dict]:
        self.report.files_checked += 1
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None
        if not isinstance(record, dict):
            return None
        self.report.records_checked += 1
        return record

    def _check_store_object(self, path: Path) -> None:
        record = self._load_record(path)
        action = "quarantined" if self.repair else "reported"
        if record is None:
            self._issue(path, "corrupt-object", "unreadable store object",
                        action)
            self._quarantine_file(path)
            return
        if codec.verify_hash(record) is False:
            self._issue(path, "bad-checksum",
                        "store payload fails its sha256", action)
            self._quarantine_file(path)
            return
        if record.get("key") != path.stem:
            self._issue(path, "key-mismatch",
                        f"record key {record.get('key')!r} does not match "
                        f"the object's content address", action)
            self._quarantine_file(path)

    def _check_result_record(self, path: Path) -> None:
        record = self._load_record(path)
        action = "quarantined" if self.repair else "reported"
        if record is None:
            self._issue(path, "corrupt-result",
                        "unreadable/truncated published result", action)
            self._quarantine_file(path)
            return
        if codec.verify_hash(record) is False:
            self._issue(path, "bad-checksum",
                        "published result fails its sha256", action)
            self._quarantine_file(path)
            return
        try:
            codec.outcome_from_record(record)
        except (KeyError, TypeError, ValueError) as exc:
            self._issue(path, "corrupt-result",
                        f"undecodable result record ({exc})", action)
            self._quarantine_file(path)

    # -- fabric control plane ------------------------------------------
    def _check_fabric(self) -> None:
        from ..fabric.transport import LeaseRecord, PLAN_FILENAME

        plan_path = self.root / PLAN_FILENAME
        plan_items: Optional[List[dict]] = None
        if plan_path.is_file():
            plan = self._load_record(plan_path)
            if plan is None or not isinstance(plan.get("items"), list):
                self._issue(
                    plan_path, "corrupt-plan",
                    "unreadable fabric plan (fabric state unusable)",
                    "quarantined" if self.repair else "reported")
                self._quarantine_file(plan_path)
            else:
                plan_items = list(plan["items"])

        results_dir = self.root / "results"
        published: Set[int] = set()
        if results_dir.is_dir():
            for path in sorted(results_dir.glob("*.json")):
                self._check_result_record(path)
                if path.exists():  # still there ⇒ it verified clean
                    try:
                        published.add(int(path.stem))
                    except ValueError:
                        pass

        leases_dir = self.root / "leases"
        if leases_dir.is_dir():
            now = time.time()
            for path in sorted(leases_dir.glob("*.json")):
                data = self._load_record(path)
                record = None
                if data is not None:
                    try:
                        record = LeaseRecord.from_json(data)
                    except (KeyError, TypeError, ValueError):
                        record = None
                if record is None:
                    self._issue(
                        path, "lease-debris",
                        "unreadable lease record (writer died mid-write)",
                        "quarantined" if self.repair else "reported")
                    self._quarantine_file(path)
                    continue
                done = False
                if plan_items is not None:
                    try:
                        index = int(path.stem.rsplit("-", 1)[1])
                        indices = plan_items[index]["indices"]
                        done = all(int(i) in published for i in indices)
                    except (IndexError, KeyError, TypeError, ValueError):
                        done = False
                if done or record.expired(now):
                    why = ("every point already published" if done
                           else "lease expired with no live owner")
                    action = "removed" if self.repair else "reported"
                    self._issue(path, "stale-lease", why, action)
                    if self.repair:
                        self._quarantine_bytes(path, "file",
                                               path.read_bytes())
                        path.unlink()
                # a live, unexpired, incomplete lease is healthy: skip

        workers_dir = self.root / "workers"
        if workers_dir.is_dir():
            for hb in sorted(workers_dir.glob("*/heartbeat.json")):
                if self._load_record(hb) is None:
                    self._issue(
                        hb, "corrupt-heartbeat",
                        "unreadable worker heartbeat",
                        "quarantined" if self.repair else "reported")
                    self._quarantine_file(hb)

    # ------------------------------------------------------------------
    def run(self) -> FsckReport:
        skip = {self.qdir.resolve()}

        def skipped(path: Path) -> bool:
            return any(parent in skip for parent in
                       [path.resolve(), *path.resolve().parents])

        for path in sorted(self.root.rglob(JOURNAL_FILENAME)):
            if not skipped(path):
                self._check_line_file(path, self._journal_entry)
        for path in sorted(self.root.rglob("telemetry.jsonl")):
            if not skipped(path):
                self._check_line_file(path, self._telemetry_entry)
        objects = self.root / "objects"
        if objects.is_dir():
            for path in sorted(objects.rglob("*.json")):
                if not skipped(path):
                    self._check_store_object(path)
        self._check_fabric()
        return self.report


def fsck_tree(root, repair: bool = True,
              quarantine_dir=None) -> FsckReport:
    """Verify (and with ``repair=True`` fix) every record under ``root``.

    Handles any mix of sweep output directories, run stores, and fabric
    directories — each known artifact class present is checked, unknown
    files are ignored.  Returns the :class:`FsckReport`; nothing valid
    is deleted, and all removed bytes are preserved under the
    quarantine sidecar (default ``<root>/fsck-quarantine/``).
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"fsck target {root} is not a directory")
    qdir = Path(quarantine_dir) if quarantine_dir is not None else None
    return _Fsck(root, repair=repair, quarantine_dir=qdir).run()
