"""Persistent result store, resumable sweep journal, regression diffing.

The execution layer (:mod:`repro.runner`) made sweeps declarative and
parallel; this package makes them *durable* and *comparable*:

* :mod:`~repro.store.store` — content-addressed on-disk store keyed by
  ``(scenario, params, fast, code fingerprint)``: "is this point
  already done?" is a lookup, and results can never leak across code
  versions;
* :mod:`~repro.store.journal` — append-only JSONL journal written as
  outcomes complete, powering ``repro sweep --resume``;
* :mod:`~repro.store.diff` — structured comparison of two artifact
  trees (new failures, check drift beyond tolerance, row deltas),
  powering ``repro diff`` and the CI regression gate;
* :mod:`~repro.store.codec` — the loss-free outcome round-trip the
  other three share, plus the additive sha256 integrity checksums;
* :mod:`~repro.store.fsck` — offline verification and repair of all of
  the above (and fabric state), powering ``repro fsck``.
"""

from .codec import outcome_from_record, outcome_to_record
from .diff import DiffReport, diff_trees, load_summary
from .fsck import FsckReport, fsck_tree
from .journal import Journal, JournalError, journal_path
from .store import RunStore, code_fingerprint, request_key
from . import journal

__all__ = [
    "DiffReport",
    "FsckReport",
    "Journal",
    "JournalError",
    "RunStore",
    "fsck_tree",
    "code_fingerprint",
    "diff_trees",
    "journal",
    "journal_path",
    "load_summary",
    "outcome_from_record",
    "outcome_to_record",
    "request_key",
]
