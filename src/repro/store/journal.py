"""Append-only JSONL sweep journal — the resume log.

The sweep CLI writes one journal per output directory: a header line
naming the scenario and the code fingerprint, then one line per
completed grid point, appended (and flushed to disk) the moment the
engine yields the outcome.  Killing a sweep at any instant therefore
leaves a journal whose intact prefix is exactly the completed work;
``repro sweep --resume <dir>`` reloads it, skips those points, and
appends the rest — the finished journal and artifact tree are
byte-identical to an uninterrupted run's.

Journal lines carry a small *volatile* side-band — per-point wall
duration, monotonic completion stamp, and (when metrics are enabled)
kernel counter deltas — so resume, ``repro telemetry`` and the live
progress ETA all share one source of truth.  Everything else is part
of the deterministic artifact contract: :func:`canonical_bytes`
projects a journal onto exactly that deterministic part, and the
byte-identity guarantees (kill-then-resume, ``--jobs N`` vs serial,
``--progress`` on vs off) hold over that projection plus, unchanged,
over every other file in the artifact tree.  Old journals without the
side-band load fine (readers treat the fields as optional).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..runner.engine import RunOutcome
from . import codec
from .store import code_fingerprint, request_key

#: the journal's name inside a sweep output directory
FILENAME = "journal.jsonl"

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Malformed journal: missing/invalid header."""


def journal_path(out_dir) -> Path:
    return Path(out_dir) / FILENAME


def _entry_line(outcome: RunOutcome) -> str:
    """The exact serialized journal line for one outcome.

    Each line carries an integrity checksum over its deterministic
    body (volatile side-band excluded), so append and the canonical
    rewrite stamp identical hashes and bit rot is detectable per line.
    """
    entry = {
        "kind": "outcome",
        "key": request_key(outcome.request),
        **codec.outcome_to_record(outcome),
    }
    return json.dumps(codec.attach_hash(entry), sort_keys=True) + "\n"


class Journal:
    """Writer side: header once, then one flushed line per outcome."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def start(self, scenario_id: str, fingerprint: str = "") -> None:
        """(Re)create the journal with a fresh header line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "scenario": scenario_id,
            "fingerprint": fingerprint or code_fingerprint(),
        }
        self.path.write_text(
            json.dumps(header, sort_keys=True) + "\n", encoding="utf-8"
        )

    def append(self, outcome: RunOutcome) -> None:
        """Durably record one completed point (open-write-close)."""
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(_entry_line(outcome))
            fh.flush()

    def rewrite(self, scenario_id: str, outcomes: Sequence[RunOutcome],
                fingerprint: str = "") -> None:
        """Atomically replace the journal with ``outcomes`` in order.

        The written bytes are exactly what ``start`` + ``append`` per
        outcome would have produced, so a completed sweep that appended
        in completion order (``--jobs N``, fabric workers) normalizes
        to the canonical grid-order journal — raw-byte-identical to a
        ``--jobs 1`` run — without ever exposing a half-written file.
        A crash mid-rewrite leaves the old journal intact, and the old
        journal already contains every outcome, so resume still works.
        """
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "scenario": scenario_id,
            "fingerprint": fingerprint or code_fingerprint(),
        }
        lines = [json.dumps(header, sort_keys=True) + "\n"]
        lines.extend(_entry_line(outcome) for outcome in outcomes)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text("".join(lines), encoding="utf-8")
        os.replace(tmp, self.path)


def _read(path: Path) -> Tuple[Dict[str, object], List[RunOutcome], int]:
    """Parse the journal; also returns the byte length of the valid
    prefix (a line is valid only if newline-terminated AND parseable —
    a sweep killed mid-write leaves a torn tail that fails one of the
    two)."""
    header: Dict[str, object] = {}
    outcomes: List[RunOutcome] = []
    valid_bytes = 0
    with path.open("rb") as fh:
        raw = fh.read()
    for i, line in enumerate(raw.splitlines(keepends=True)):
        if not line.endswith(b"\n"):
            break
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break  # killed mid-write; the rest is untrustworthy
        if codec.verify_hash(entry) is False:
            break  # checksum mismatch: bit rot or an in-place scribble
        if i == 0:
            if entry.get("kind") != "header":
                raise JournalError(
                    f"{path}: first line is not a journal header"
                )
            header = entry
        elif entry.get("kind") == "outcome":
            outcomes.append(codec.outcome_from_record(entry))
        valid_bytes += len(line)
    if not header:
        raise JournalError(f"{path}: empty or headerless journal")
    return header, outcomes, valid_bytes


def load(path) -> Tuple[Dict[str, object], List[RunOutcome]]:
    """Read a journal back: ``(header, completed outcomes)``.

    A torn final line is dropped along with anything after it;
    everything before the damage is trusted.
    """
    header, outcomes, _ = _read(Path(path))
    return header, outcomes


def recover(path) -> Tuple[Dict[str, object], List[RunOutcome]]:
    """Like :func:`load`, but also truncates the file to its valid
    prefix so subsequent appends continue a well-formed journal."""
    path = Path(path)
    header, outcomes, valid_bytes = _read(path)
    if valid_bytes < path.stat().st_size:
        with path.open("r+b") as fh:
            fh.truncate(valid_bytes)
    return header, outcomes


def canonical_bytes(path) -> bytes:
    """The journal's deterministic projection, as bytes.

    Each line is re-serialized with :data:`codec.VOLATILE_FIELDS`
    removed, so two runs that computed the same work — whatever their
    wall-clock weather — compare equal.  Used by the byte-identity
    tests and ``repro diff``-style tooling; raises like :func:`load`
    on a headerless file.
    """
    path = Path(path)
    lines = []
    with path.open("rb") as fh:
        raw = fh.read()
    for i, line in enumerate(raw.splitlines(keepends=True)):
        if not line.endswith(b"\n"):
            break
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        if codec.verify_hash(entry) is False:
            break
        if i == 0 and entry.get("kind") != "header":
            raise JournalError(f"{path}: first line is not a journal header")
        lines.append(
            json.dumps(codec.strip_volatile(entry), sort_keys=True) + "\n"
        )
    if not lines:
        raise JournalError(f"{path}: empty or headerless journal")
    return "".join(lines).encode("utf-8")


def merge_segments(segment_paths: Iterable) -> Dict[str, RunOutcome]:
    """Fold per-worker journal segments into one key→outcome map.

    Segments are read in sorted path order and the first occurrence of
    each request key wins, so the merge is deterministic regardless of
    which worker finished first.  Torn tails and entirely unreadable
    segments (a worker killed before writing its header) are skipped —
    a dead worker's damage is bounded to its own unpublished tail.
    Re-executed points publish canonically identical records, so
    first-wins loses nothing but volatile timings.
    """
    merged: Dict[str, RunOutcome] = {}
    for path in sorted(Path(p) for p in segment_paths):
        try:
            _, outcomes = load(path)
        except (JournalError, OSError):
            continue
        for outcome in outcomes:
            merged.setdefault(request_key(outcome.request), outcome)
    return merged
