"""Distributed sweep fabric: coordinator-leased grid execution.

The sweep engine's ``--jobs N`` ceiling is one ``multiprocessing.Pool``
on one host.  This package graduates it to a small work-leasing
service built entirely from seams that already existed — picklable
:class:`~repro.runner.engine.RunRequest` values, the content-addressed
:class:`~repro.store.RunStore`, and the append-only journal with
torn-tail recovery:

* :mod:`repro.fabric.dispatch` — capacity-limited deferred dispatch
  (the ``cs/later.py`` pattern): submit work, at most ``capacity``
  callables run at once, the rest queue FIFO;
* :mod:`repro.fabric.transport` — the lease protocol.  The abstract
  surface is :class:`Transport`; the one implementation is
  :class:`FileTransport`, lease records and published results as
  atomic files in a shared directory (a socket transport can slot in
  behind the same surface later);
* :mod:`repro.fabric.worker` — the ``repro worker <dir>`` daemon loop:
  claim a lease, execute the work item through the existing engine
  (batch packing included), stream a per-worker journal + telemetry
  segment, publish results, repeat;
* :mod:`repro.fabric.coordinator` — plans the grid, seeds the lease
  queue, optionally spawns local workers, monitors heartbeats, breaks
  expired leases so dead workers' points get re-leased, salvages
  journaled-but-unpublished outcomes, and merges everything back into
  the canonical grid-order artifacts — byte-identical to
  ``repro sweep --jobs 1``.

Failure handling throughout (retry/backoff, publish fencing, point
quarantine, integrity checksums) is exercised deterministically by the
seeded fault schedules in :mod:`repro.chaos` and audited offline by
``repro fsck``.
"""

from .dispatch import CapacityDispatcher, Deferred
from .transport import (
    FabricError,
    FileTransport,
    LeaseRecord,
    Transport,
    worker_identity,
)
from .worker import WorkerStats, run_worker
from .coordinator import FabricSweep, plan_fabric, run_fabric_sweep

__all__ = [
    "CapacityDispatcher",
    "Deferred",
    "FabricError",
    "FabricSweep",
    "FileTransport",
    "LeaseRecord",
    "Transport",
    "WorkerStats",
    "plan_fabric",
    "run_fabric_sweep",
    "run_worker",
    "worker_identity",
]
