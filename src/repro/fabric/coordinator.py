"""The fabric coordinator: plan, lease, supervise, merge.

``run_fabric_sweep`` is the whole coordinator side of a distributed
sweep.  It seeds the shared directory with the plan (grid requests in
canonical order plus the engine's batch-packed work items), optionally
spawns ``repro worker`` subprocesses under a capacity-limited
dispatcher that restarts dead workers, then sits in a monitor loop:

* ingest newly published results the moment they land (the
  ``on_outcome`` callback fires in completion order, exactly like the
  local engine's);
* break leases whose deadline lapsed — the owner stopped heartbeating,
  so the item goes back in the pool for any live worker to take over;
* salvage: before breaking a dead worker's lease, scan every worker's
  journal segment for outcomes that were journaled but never
  published, and publish them — work a worker finished in its last
  instants is never re-executed;
* export fabric gauges/counters (leased, workers alive, results,
  expired leases, salvages) when telemetry is enabled.

When every grid point has a published result, the outcomes are
reassembled in request order and handed back; the caller (the sweep
CLI) journals and writes artifacts through the same code path a local
run uses, so the finished artifact tree is byte-identical to
``repro sweep --jobs 1``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from ..obs.metrics import REGISTRY
from ..runner import engine
from ..runner.engine import RunOutcome, RunRequest
from ..store import codec
from ..store import journal as journal_mod
from ..store.store import code_fingerprint, request_key
from .dispatch import CapacityDispatcher, Deferred
from .transport import (
    FabricError,
    FileTransport,
    Transport,
    encode_requests,
)

#: how many times a dead local worker is relaunched before giving up
DEFAULT_MAX_RESTARTS = 3


@dataclass
class FabricSweep:
    """What a fabric run produced and what it took to get there."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    workers_spawned: int = 0
    worker_restarts: int = 0
    expired_leases: int = 0
    salvaged: int = 0
    corrupt_results: int = 0

    def summary(self) -> str:
        text = (
            f"fabric: {len(self.outcomes)} points via "
            f"{self.workers_spawned} spawned workers "
            f"({self.worker_restarts} restarts, "
            f"{self.expired_leases} expired leases, "
            f"{self.salvaged} salvaged)"
        )
        if self.corrupt_results:
            text += f", {self.corrupt_results} corrupt results discarded"
        return text


def plan_fabric(
    transport: Transport,
    scenario_id: str,
    requests: Sequence[RunRequest],
    store: Optional[Union[str, Path]] = None,
    fingerprint: str = "",
) -> Dict[str, object]:
    """Seed (or validate and reuse) the fabric plan.

    The plan pins the grid in canonical order and the engine's
    batch-packed work items, so every worker leases identical units.
    A fabric directory that already holds a plan must hold *this*
    plan — same scenario, fingerprint, and requests — which makes
    re-running a coordinator against a half-finished directory a
    resume, not a corruption.
    """
    requests = list(requests)
    fingerprint = fingerprint or code_fingerprint()
    index_of = {request: i for i, request in enumerate(requests)}
    items = []
    for kind, payload in engine.plan_items(requests):
        group = [payload] if kind == "one" else list(payload)
        items.append(
            {"kind": kind, "indices": [index_of[r] for r in group]}
        )
    plan: Dict[str, object] = {
        "kind": "fabric-plan",
        "version": 1,
        "scenario": scenario_id,
        "fingerprint": fingerprint,
        "store": str(Path(store).resolve()) if store else None,
        "requests": encode_requests(requests),
        "items": items,
    }
    existing = transport.read_plan()
    if existing is not None:
        for field_name in ("scenario", "fingerprint", "requests"):
            if existing.get(field_name) != plan[field_name]:
                raise FabricError(
                    f"fabric directory already holds a different plan "
                    f"({field_name} mismatch); use a fresh directory"
                )
        return existing
    transport.write_plan(plan)
    return plan


def _worker_command(
    fabric_root: Path,
    lease_ttl: float,
    point_timeout: Optional[float] = None,
    quarantine_after: Optional[int] = None,
) -> List[str]:
    command = [
        sys.executable, "-m", "repro", "worker", str(fabric_root),
        "--lease-ttl", str(lease_ttl),
    ]
    if point_timeout is not None:
        command += ["--point-timeout", str(point_timeout)]
    if quarantine_after is not None:
        command += ["--quarantine-after", str(quarantine_after)]
    return command


def _worker_env() -> Dict[str, str]:
    """The spawned worker's environment: ours, plus the package root on
    ``PYTHONPATH`` so ``-m repro`` resolves even under bare pytest."""
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    paths = existing.split(os.pathsep) if existing else []
    if pkg_root not in paths:
        env["PYTHONPATH"] = os.pathsep.join([pkg_root] + paths)
    return env


class _WorkerCrew:
    """Local worker subprocesses under capacity-limited supervision."""

    def __init__(self, count: int, spawn: Callable[[int], subprocess.Popen],
                 max_restarts: int) -> None:
        self._spawn = spawn
        self._max_restarts = max_restarts
        self.done = threading.Event()
        self.restarts = 0
        self.spawned = 0
        self._lock = threading.Lock()
        self._procs: Set[subprocess.Popen] = set()
        self._dispatcher = CapacityDispatcher(
            capacity=count, name="fabric-workers"
        )
        self.handles: List[Deferred] = [
            self._dispatcher.submit(
                self._supervise, index, label=f"worker-{index}"
            )
            for index in range(count)
        ]

    def _supervise(self, index: int) -> int:
        restarts = 0
        while not self.done.is_set():
            proc = self._spawn(index)
            with self._lock:
                self.spawned += 1
                self._procs.add(proc)
            try:
                rc = proc.wait()
            finally:
                with self._lock:
                    self._procs.discard(proc)
            if rc == 0 or self.done.is_set():
                return rc
            restarts += 1
            with self._lock:
                self.restarts += 1
            if REGISTRY.enabled:
                REGISTRY.counter("fabric.worker_restarts").inc()
            if restarts > self._max_restarts:
                raise FabricError(
                    f"fabric worker {index} died {restarts} times "
                    f"(last exit code {rc}); giving up on this slot"
                )
        return 0

    def all_exited(self) -> bool:
        return all(handle.done for handle in self.handles)

    def first_failure(self) -> Optional[BaseException]:
        failed = self._dispatcher.failures()
        return failed[0].exception if failed else None

    def shutdown(self) -> None:
        self.done.set()
        with self._lock:
            procs = list(self._procs)
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._dispatcher.drain(timeout=10.0)


def _salvage(
    transport: FileTransport,
    key_to_index: Dict[str, int],
    have: Set[int],
) -> int:
    """Publish journaled-but-unpublished outcomes from worker segments.

    A worker killed between its journal append and its publish left a
    durable record of finished work; re-publishing it here means the
    re-leased item never re-executes those points.  Publication stays
    idempotent, so racing an actually-alive worker is harmless.
    """
    salvaged = 0
    merged = journal_mod.merge_segments(transport.segment_journals())
    for key, outcome in merged.items():
        index = key_to_index.get(key)
        if index is None or index in have:
            continue
        record = codec.outcome_to_record(outcome)
        record["key"] = key
        record["worker"] = "salvage"
        if transport.publish_result(index, codec.attach_hash(record)):
            salvaged += 1
    return salvaged


def run_fabric_sweep(
    fabric: Union[str, Path, Transport],
    scenario_id: str,
    requests: Sequence[RunRequest],
    workers: int = 0,
    store: Optional[Union[str, Path]] = None,
    lease_ttl: float = 20.0,
    poll_s: float = 0.25,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
    timeout: Optional[float] = None,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
    spawn: Optional[Callable[[int], subprocess.Popen]] = None,
    point_timeout: Optional[float] = None,
    quarantine_after: Optional[int] = None,
    retry: Optional[object] = None,
) -> FabricSweep:
    """Run ``requests`` through the fabric; outcomes in request order.

    ``workers > 0`` spawns that many local ``repro worker`` daemons
    (restarted on death up to ``max_restarts`` times each); with
    ``workers == 0`` the coordinator only plans and monitors, and
    externally attached workers — other hosts on a shared mount —
    do the executing.  ``spawn`` overrides how a worker subprocess is
    launched (tests use it to inject crashing workers).
    ``point_timeout``/``quarantine_after`` are forwarded to spawned
    workers; ``retry`` is the coordinator's own
    :class:`~repro.chaos.retry.RetryPolicy` for transient transport
    faults.
    """
    from ..chaos.retry import RetryPolicy

    retry_policy = retry if retry is not None else RetryPolicy()
    if isinstance(fabric, Transport):
        transport = fabric
    else:
        transport = FileTransport(fabric)
    if not isinstance(transport, FileTransport):
        raise FabricError(
            "run_fabric_sweep currently requires a FileTransport"
        )
    requests = list(requests)
    sweep = FabricSweep()
    if not requests:
        return sweep
    retry_policy.call(
        plan_fabric, transport, scenario_id, requests, store=store,
        key="plan",
    )
    key_to_index = {
        request_key(request): i for i, request in enumerate(requests)
    }
    total = len(requests)
    by_index: Dict[int, RunOutcome] = {}

    crew: Optional[_WorkerCrew] = None
    if workers > 0:
        if spawn is None:
            command = _worker_command(
                transport.root, lease_ttl,
                point_timeout=point_timeout,
                quarantine_after=quarantine_after,
            )
            env = _worker_env()

            def spawn(index: int) -> subprocess.Popen:  # noqa: F811
                return subprocess.Popen(
                    command, env=env, stdout=subprocess.DEVNULL
                )

        crew = _WorkerCrew(workers, spawn, max_restarts)

    start = time.monotonic()
    try:
        while True:
            fresh = transport.result_indices() - by_index.keys()
            for index in sorted(fresh):
                record = transport.read_result(index)
                if (record is None
                        or codec.verify_hash(record) is False):
                    # the index is listed but its record is unreadable
                    # or fails its checksum: torn/corrupt debris at the
                    # result path.  Leaving it would wedge the sweep
                    # (the scan would skip it forever while workers see
                    # it as published) — discard so it is republished.
                    if transport.discard_result(index):
                        sweep.corrupt_results += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.corrupt_results"
                            ).inc()
                    continue
                try:
                    outcome = codec.outcome_from_record(record)
                except (KeyError, TypeError, ValueError):
                    # parseable JSON, but not a result record (an old
                    # writer's debris): same treatment
                    if transport.discard_result(index):
                        sweep.corrupt_results += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.corrupt_results"
                            ).inc()
                    continue
                by_index[index] = outcome
                if REGISTRY.enabled:
                    REGISTRY.counter("fabric.results").inc()
                if on_outcome is not None:
                    on_outcome(outcome)
            if len(by_index) >= total:
                break

            leases = transport.leases()
            now = time.time()
            expired = [
                lease for lease in leases.values() if lease.expired(now)
            ]
            if expired:
                # the owners went quiet: rescue their journaled work,
                # then free the items for takeover
                sweep.salvaged += _salvage(
                    transport, key_to_index, set(by_index)
                )
                for lease in expired:
                    if transport.break_lease(lease.item):
                        sweep.expired_leases += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.expired_leases"
                            ).inc()
            if REGISTRY.enabled:
                REGISTRY.gauge("fabric.leased").set(len(leases))
                REGISTRY.gauge("fabric.completed").set(len(by_index))
                REGISTRY.gauge("fabric.workers_alive").set(
                    len(transport.alive_workers(lease_ttl * 2))
                )

            if crew is not None:
                failure = crew.first_failure()
                if failure is not None:
                    raise failure
                if crew.all_exited():
                    # one more ingest pass: they may have published
                    # everything and exited cleanly between our scans
                    if transport.result_indices() >= set(
                        range(total)
                    ):
                        continue
                    # last resort: a worker that exhausted its publish
                    # retries exits with the work journaled but not
                    # published — rescue those segments before giving up
                    salvaged = _salvage(
                        transport, key_to_index, set(by_index)
                    )
                    if salvaged:
                        sweep.salvaged += salvaged
                        continue
                    raise FabricError(
                        "every fabric worker exited but "
                        f"{total - len(by_index)} points remain "
                        "unpublished"
                    )
            if timeout is not None and time.monotonic() - start > timeout:
                raise FabricError(
                    f"fabric sweep incomplete after {timeout:.0f}s: "
                    f"{len(by_index)}/{total} points published"
                )
            time.sleep(poll_s)
    finally:
        if crew is not None:
            crew.shutdown()
            sweep.workers_spawned = crew.spawned
            sweep.worker_restarts = crew.restarts

    sweep.outcomes = [by_index[i] for i in range(total)]
    return sweep
