"""The fabric worker loop: claim a lease, execute, publish, repeat.

A worker attaches to a fabric directory, waits for the coordinator's
plan, then scans for work items whose results are not yet published.
For each one it wins a lease on, it executes the item through the
ordinary sweep engine — a batch-packed item runs through the compiled
backend's lane packing exactly as ``--jobs 1`` would — while a
background thread renews the lease so a *live* worker never loses it.
Every outcome is appended to the worker's own journal segment (durable
before publication: a worker killed between append and publish leaves
a salvageable record), streamed to the worker's telemetry segment,
published into the shared results, and written to the content-addressed
run store when one is configured.

Publication is idempotent, so a worker that takes over an expired
lease and re-executes a point another worker already half-finished is
harmless: the first published record wins and both are canonically
identical.

Robustness seams layered on top of that happy path:

* transient transport faults are retried with deterministic backoff
  (:class:`~repro.chaos.retry.RetryPolicy`);
* a lost lease renewal raises the renewer's ``lost`` flag, and the
  worker re-verifies ownership *between execution and publish* — a
  fenced worker never publishes over a takeover's results (its journal
  segment keeps the work salvageable);
* a work item may carry a wall-clock ``point_timeout``; an executor
  that blows it is abandoned and the points journal as structured
  ``point timeout`` failures;
* an item whose lease attempt count says it already killed
  ``quarantine_after`` executors is *quarantined*: journaled and
  published as a structured failure without being executed, so one
  poisoned point cannot wedge the whole sweep;
* under ``REPRO_CHAOS`` (see :mod:`repro.chaos`) the worker wraps its
  transport in a fault-injecting decorator and honors ``worker.item``
  (die/hang) and ``journal.append`` (corrupt) crash points — the same
  seed replays the same faults.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..runner import engine, registry
from ..store import codec
from ..store import journal as journal_mod
from ..store.journal import Journal
from ..store.store import RunStore, code_fingerprint, request_key
from ..obs.metrics import REGISTRY
from ..obs.telemetry import TelemetryWriter
from .transport import (
    FabricError,
    FileTransport,
    Transport,
    decode_requests,
    item_id,
    worker_identity,
)

#: a point that already killed this many executors is not tried again
DEFAULT_QUARANTINE_AFTER = 2

#: exit status of a chaos-injected worker death (mirrors SIGKILL's 137
#: so the crew's restart accounting treats it like a real kill)
CHAOS_EXIT_STATUS = 137


@dataclass
class WorkerStats:
    """What one worker run did, for logs and tests."""

    worker_id: str
    claimed: int = 0
    takeovers: int = 0
    executed_points: int = 0
    published: int = 0
    duplicate_results: int = 0
    errors: int = 0
    fenced: int = 0
    quarantined: int = 0
    timeouts: int = 0
    publish_failures: int = 0
    scenario: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        text = (
            f"worker {self.worker_id}: {self.claimed} leases "
            f"({self.takeovers} takeovers), {self.executed_points} points, "
            f"{self.published} published, "
            f"{self.duplicate_results} duplicates, {self.errors} errors"
        )
        if self.fenced or self.quarantined or self.timeouts:
            text += (
                f", {self.fenced} fenced, {self.quarantined} quarantined, "
                f"{self.timeouts} timeouts"
            )
        return text


def _result_record(outcome: engine.RunOutcome,
                   worker_id: str) -> Dict[str, object]:
    """The published form of one outcome: codec record + key + worker,
    stamped with its integrity checksum."""
    record = codec.outcome_to_record(outcome)
    record["key"] = request_key(outcome.request)
    record["worker"] = worker_id
    return codec.attach_hash(record)


class _LeaseRenewer:
    """Background heartbeat for one held lease.

    A renewal that reports ownership lost sets :attr:`lost` — the abort
    flag the worker checks between execution and publish (fencing).  A
    transient renew *error* is not a loss: the deadline still has most
    of a TTL of slack, so the renewer just tries again next tick.
    """

    def __init__(self, transport: Transport, item: str, owner: str,
                 ttl: float, join_timeout: float = 5.0) -> None:
        self._transport = transport
        self._item = item
        self._owner = owner
        self._ttl = ttl
        self._join_timeout = join_timeout
        self._stop = threading.Event()
        self.lost = threading.Event()
        self.leaked = False
        self._thread = threading.Thread(
            target=self._loop, name=f"lease-renew:{item}", daemon=True
        )

    def _loop(self) -> None:
        interval = max(0.05, self._ttl / 3.0)
        while not self._stop.wait(interval):
            try:
                renewed = self._transport.renew(
                    self._item, self._owner, self._ttl
                )
            except OSError:
                continue  # transient; retry on the next tick
            if not renewed:
                self.lost.set()
                if REGISTRY.enabled:
                    REGISTRY.counter("fabric.leases_lost").inc()
                return
        # one final renewal is pointless: the executor releases next

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._join_timeout)
        if self._thread.is_alive():
            # a renew call wedged in a syscall: don't block the worker on
            # it.  The thread is daemonized and re-checks the stop event
            # before every renew, so it can never renew again after this
            # point — the lease simply expires; record the leak instead
            # of silently abandoning the thread.
            self.leaked = True
            if REGISTRY.enabled:
                REGISTRY.counter("fabric.renewer_leaks").inc()


def _open_segments(
    transport: FileTransport, worker_id: str, scenario_id: str,
    fingerprint: str
) -> tuple[Journal, TelemetryWriter]:
    """Per-worker journal + telemetry segments, resumable after a crash."""
    seg_dir = transport.worker_dir(worker_id)
    journal = Journal(seg_dir / "journal.jsonl")
    if journal.path.exists():
        # same worker id re-attached (restart): drop any torn tail,
        # then keep appending
        journal_mod.recover(journal.path)
    else:
        journal.start(scenario_id, fingerprint)
    telemetry = TelemetryWriter(seg_dir / "telemetry.jsonl")
    if not telemetry.path.exists():
        telemetry.start(scenario_id, fingerprint, jobs=1)
    return journal, telemetry


def _execute_guarded(
    work: engine.WorkItem,
    point_timeout: Optional[float],
    hang_s: Optional[float],
) -> Tuple[Optional[List[engine.RunOutcome]], bool]:
    """Run one work item, optionally under a wall-clock timeout.

    Returns ``(outcomes, timed_out)``.  With a timeout the item runs on
    a daemon thread; blowing the deadline abandons the executor (it can
    finish into the void — results are discarded) and returns
    ``(None, True)``.  ``hang_s`` is the chaos hang: the executor stalls
    *after* computing, before handing results back, which is how a
    wedged simulation looks from the outside.
    """
    if point_timeout is None and hang_s is None:
        return engine.execute_item(work), False
    box: List[object] = []

    def target() -> None:
        try:
            result: object = engine.execute_item(work)
        except BaseException as exc:  # surfaced to the caller below
            result = exc
        if hang_s:
            time.sleep(hang_s)
        box.append(result)

    thread = threading.Thread(
        target=target, name="fabric-executor", daemon=True
    )
    thread.start()
    thread.join(point_timeout)
    if thread.is_alive():
        return None, True
    result = box[0]
    if isinstance(result, BaseException):
        raise result
    return result, False


def _scribble_last_line(path: Path) -> None:
    """Chaos ``journal.append=corrupt``: flip bytes inside the line just
    appended, keeping the trailing newline — the in-place bit-rot shape
    that checksums (not torn-tail truncation) must catch."""
    with path.open("r+b") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size > 16:
            fh.seek(size - 10)
            fh.write(b"\xffCHAOS\xff")


def run_worker(
    fabric: Union[str, Path, Transport],
    worker_id: Optional[str] = None,
    lease_ttl: float = 20.0,
    poll_s: float = 0.5,
    plan_timeout: float = 60.0,
    once: bool = False,
    max_items: Optional[int] = None,
    store: Optional[RunStore] = None,
    point_timeout: Optional[float] = None,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    chaos: Optional[object] = None,
    retry: Optional[object] = None,
) -> WorkerStats:
    """Attach to a fabric and execute leased work until the plan is done.

    ``once`` makes a single claim pass and returns (tests and cron-style
    drivers); ``max_items`` caps how many leases this worker will
    execute (the dead-worker tests use ``max_items=1`` to stop a worker
    mid-plan).  ``chaos`` is an explicit
    :class:`~repro.chaos.policy.ChaosPolicy` (default: parsed from the
    ``REPRO_CHAOS`` environment variable); ``retry`` an explicit
    :class:`~repro.chaos.retry.RetryPolicy`.  Raises
    :class:`FabricError` if no plan appears within ``plan_timeout``
    seconds or the plan's code fingerprint does not match this worker's
    checkout.
    """
    # lazy imports: repro.chaos.transport imports this package
    from ..chaos.policy import policy_from_env
    from ..chaos.retry import RetryPolicy
    from ..chaos.transport import ChaosTransport

    if isinstance(fabric, Transport):
        transport = fabric
    else:
        transport = FileTransport(fabric)
    policy = chaos if chaos is not None else policy_from_env(os.environ)
    if isinstance(transport, ChaosTransport):
        bus: Transport = transport
        transport = transport.inner
    elif policy is not None:
        bus = ChaosTransport(transport, policy)
    else:
        bus = transport
    if not isinstance(transport, FileTransport):
        raise FabricError(
            "run_worker currently requires a FileTransport for journal "
            "and telemetry segments"
        )
    retry_policy: RetryPolicy = retry if retry is not None else RetryPolicy()
    wid = worker_id or worker_identity()
    stats = WorkerStats(worker_id=wid)

    deadline = time.monotonic() + plan_timeout
    plan = None
    while plan is None:
        try:
            plan = bus.read_plan()
        except OSError:
            plan = None  # transient transport fault: poll again
        if plan is not None:
            break
        if time.monotonic() >= deadline:
            raise FabricError(
                f"no fabric plan appeared in {transport.root} within "
                f"{plan_timeout:.0f}s"
            )
        time.sleep(min(poll_s, 0.2))

    registry.load_builtin()
    fingerprint = code_fingerprint()
    if plan.get("fingerprint") != fingerprint:
        raise FabricError(
            f"fabric plan was made from code fingerprint "
            f"{plan.get('fingerprint')}, this worker runs {fingerprint}; "
            f"refusing to mix results from different code"
        )
    scenario_id = str(plan["scenario"])
    stats.scenario = scenario_id
    requests = decode_requests(plan)
    items: List[dict] = list(plan["items"])
    run_store = store
    if run_store is None and plan.get("store"):
        run_store = RunStore(plan["store"])

    journal, telemetry = _open_segments(
        transport, wid, scenario_id, fingerprint
    )

    def heartbeat() -> None:
        try:
            retry_policy.call(bus.heartbeat, wid, key=f"{wid}:heartbeat")
        except OSError:
            pass  # liveness beacon is best-effort

    try:
        while True:
            heartbeat()
            published = transport.result_indices()
            missing = [
                i for i, item in enumerate(items)
                if any(idx not in published for idx in item["indices"])
            ]
            if not missing:
                break
            progressed = False
            for index in missing:
                if max_items is not None and stats.claimed >= max_items:
                    return stats
                try:
                    lease = retry_policy.call(
                        bus.try_claim, item_id(index), wid, lease_ttl,
                        key=f"{wid}:claim:{index}",
                    )
                except OSError:
                    continue  # persistent claim failure: try other items
                if lease is None:
                    continue
                item = items[index]
                published = transport.result_indices()
                if all(idx in published for idx in item["indices"]):
                    # the missing-scan was stale: another worker
                    # finished this item between our scan and our
                    # claim — executing it again would only produce
                    # duplicates, so hand the lease straight back
                    transport.release(item_id(index), wid)
                    progressed = True
                    continue
                stats.claimed += 1
                if lease.attempt > 1:
                    stats.takeovers += 1
                if REGISTRY.enabled:
                    REGISTRY.counter("fabric.items_claimed").inc()
                    if lease.attempt > 1:
                        REGISTRY.counter("fabric.takeovers").inc()
                group = [requests[idx] for idx in item["indices"]]
                work = (
                    ("batch", group) if item["kind"] == "batch"
                    else ("one", group[0])
                )
                renewer: Optional[_LeaseRenewer] = None
                die_pending = False
                if lease.attempt > quarantine_after:
                    # this item's previous owners died mid-execution
                    # quarantine_after times; executing it again would
                    # kill us too — record the failure and move on
                    stats.quarantined += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter("fabric.quarantined").inc()
                    outcomes = engine.failed_outcomes(
                        group,
                        f"quarantined: {item_id(index)} killed "
                        f"{lease.attempt - 1} executor(s); not retrying",
                    )
                else:
                    hang_s: Optional[float] = None
                    if policy is not None:
                        rule = policy.fire("worker.item")
                        if rule is not None and rule.fault == "die":
                            die_pending = True
                        elif rule is not None and rule.fault == "hang":
                            hang_s = rule.arg
                    with _LeaseRenewer(bus, item_id(index), wid,
                                       lease_ttl) as renewer:
                        outcomes, timed_out = _execute_guarded(
                            work, point_timeout, hang_s
                        )
                    if timed_out:
                        stats.timeouts += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter("fabric.point_timeouts").inc()
                        outcomes = engine.failed_outcomes(
                            group,
                            f"point timeout: exceeded "
                            f"{point_timeout:g}s wall clock; "
                            f"executor abandoned",
                        )
                # durable first: journal + telemetry before publication,
                # so a crash in the publish loop leaves salvageable
                # segments
                for outcome in outcomes:
                    journal.append(outcome)
                    if policy is not None:
                        rule = policy.fire("journal.append")
                        if rule is not None and rule.fault == "corrupt":
                            _scribble_last_line(journal.path)
                    telemetry.append_point(outcome)
                    stats.executed_points += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter("fabric.points_executed").inc()
                    if outcome.error:
                        stats.errors += 1
                if die_pending:
                    # chaos crash point: after the durable append, before
                    # publication — the exact window the salvage path and
                    # lease takeover exist for
                    os._exit(CHAOS_EXIT_STATUS)
                # fencing: re-verify ownership between execution and
                # publish.  A lost renewal (or a takeover visible in the
                # lease record) means another worker may already be
                # re-executing this item — publishing now could overwrite
                # nothing (publication is idempotent) but racing is
                # pointless: abort, keep the journaled work salvageable.
                current = transport.lease(item_id(index))
                if renewer is not None and (
                    renewer.lost.is_set()
                    or current is None
                    or current.owner != wid
                ):
                    stats.fenced += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter("fabric.fenced").inc()
                    try:
                        transport.release(item_id(index), wid)
                    except OSError:
                        pass
                    progressed = True
                    continue
                for idx, outcome in zip(item["indices"], outcomes):
                    if not outcome.error and run_store is not None:
                        run_store.put(outcome)
                    try:
                        fresh = retry_policy.call(
                            bus.publish_result, idx,
                            _result_record(outcome, wid),
                            key=f"{wid}:publish:{idx}",
                        )
                    except OSError:
                        # persistently unpublishable: the outcome is
                        # journaled, so the coordinator's salvage pass
                        # still completes the point
                        stats.publish_failures += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.publish_failures"
                            ).inc()
                        continue
                    if fresh:
                        stats.published += 1
                    else:
                        stats.duplicate_results += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.duplicate_results"
                            ).inc()
                try:
                    retry_policy.call(
                        bus.release, item_id(index), wid,
                        key=f"{wid}:release:{index}",
                    )
                except OSError:
                    pass  # the lease will expire on its own
                heartbeat()
                progressed = True
            if once:
                break
            if not progressed:
                # everything missing is leased elsewhere: wait for the
                # owners to publish or their leases to expire
                time.sleep(poll_s)
    finally:
        telemetry.finish({
            "worker": wid,
            "points": stats.executed_points,
            "failures": stats.errors,
            "claimed": stats.claimed,
            "takeovers": stats.takeovers,
            "fenced": stats.fenced,
            "quarantined": stats.quarantined,
            "timeouts": stats.timeouts,
        })
    return stats
