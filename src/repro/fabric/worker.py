"""The fabric worker loop: claim a lease, execute, publish, repeat.

A worker attaches to a fabric directory, waits for the coordinator's
plan, then scans for work items whose results are not yet published.
For each one it wins a lease on, it executes the item through the
ordinary sweep engine — a batch-packed item runs through the compiled
backend's lane packing exactly as ``--jobs 1`` would — while a
background thread renews the lease so a *live* worker never loses it.
Every outcome is appended to the worker's own journal segment (durable
before publication: a worker killed between append and publish leaves
a salvageable record), streamed to the worker's telemetry segment,
published into the shared results, and written to the content-addressed
run store when one is configured.

Publication is idempotent, so a worker that takes over an expired
lease and re-executes a point another worker already half-finished is
harmless: the first published record wins and both are canonically
identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..runner import engine, registry
from ..store import codec
from ..store import journal as journal_mod
from ..store.journal import Journal
from ..store.store import RunStore, code_fingerprint, request_key
from ..obs.metrics import REGISTRY
from ..obs.telemetry import TelemetryWriter
from .transport import (
    FabricError,
    FileTransport,
    Transport,
    decode_requests,
    item_id,
    worker_identity,
)


@dataclass
class WorkerStats:
    """What one worker run did, for logs and tests."""

    worker_id: str
    claimed: int = 0
    takeovers: int = 0
    executed_points: int = 0
    published: int = 0
    duplicate_results: int = 0
    errors: int = 0
    scenario: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: {self.claimed} leases "
            f"({self.takeovers} takeovers), {self.executed_points} points, "
            f"{self.published} published, "
            f"{self.duplicate_results} duplicates, {self.errors} errors"
        )


def _result_record(outcome: engine.RunOutcome,
                   worker_id: str) -> Dict[str, object]:
    """The published form of one outcome: codec record + key + worker."""
    record = codec.outcome_to_record(outcome)
    record["key"] = request_key(outcome.request)
    record["worker"] = worker_id
    return record


class _LeaseRenewer:
    """Background heartbeat for one held lease."""

    def __init__(self, transport: Transport, item: str, owner: str,
                 ttl: float) -> None:
        self._transport = transport
        self._item = item
        self._owner = owner
        self._ttl = ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"lease-renew:{item}", daemon=True
        )

    def _loop(self) -> None:
        interval = max(0.05, self._ttl / 3.0)
        while not self._stop.wait(interval):
            if not self._transport.renew(self._item, self._owner, self._ttl):
                return  # ownership lost; stop renewing, executor finishes
        # one final renewal is pointless: the executor releases next

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _open_segments(
    transport: FileTransport, worker_id: str, scenario_id: str,
    fingerprint: str
) -> tuple[Journal, TelemetryWriter]:
    """Per-worker journal + telemetry segments, resumable after a crash."""
    seg_dir = transport.worker_dir(worker_id)
    journal = Journal(seg_dir / "journal.jsonl")
    if journal.path.exists():
        # same worker id re-attached (restart): drop any torn tail,
        # then keep appending
        journal_mod.recover(journal.path)
    else:
        journal.start(scenario_id, fingerprint)
    telemetry = TelemetryWriter(seg_dir / "telemetry.jsonl")
    if not telemetry.path.exists():
        telemetry.start(scenario_id, fingerprint, jobs=1)
    return journal, telemetry


def run_worker(
    fabric: Union[str, Path, Transport],
    worker_id: Optional[str] = None,
    lease_ttl: float = 20.0,
    poll_s: float = 0.5,
    plan_timeout: float = 60.0,
    once: bool = False,
    max_items: Optional[int] = None,
    store: Optional[RunStore] = None,
) -> WorkerStats:
    """Attach to a fabric and execute leased work until the plan is done.

    ``once`` makes a single claim pass and returns (tests and cron-style
    drivers); ``max_items`` caps how many leases this worker will
    execute (the dead-worker tests use ``max_items=1`` to stop a worker
    mid-plan).  Raises :class:`FabricError` if no plan appears within
    ``plan_timeout`` seconds or the plan's code fingerprint does not
    match this worker's checkout.
    """
    if isinstance(fabric, Transport):
        transport = fabric
    else:
        transport = FileTransport(fabric)
    if not isinstance(transport, FileTransport):
        raise FabricError(
            "run_worker currently requires a FileTransport for journal "
            "and telemetry segments"
        )
    wid = worker_id or worker_identity()
    stats = WorkerStats(worker_id=wid)

    deadline = time.monotonic() + plan_timeout
    plan = transport.read_plan()
    while plan is None:
        if time.monotonic() >= deadline:
            raise FabricError(
                f"no fabric plan appeared in {transport.root} within "
                f"{plan_timeout:.0f}s"
            )
        time.sleep(min(poll_s, 0.2))
        plan = transport.read_plan()

    registry.load_builtin()
    fingerprint = code_fingerprint()
    if plan.get("fingerprint") != fingerprint:
        raise FabricError(
            f"fabric plan was made from code fingerprint "
            f"{plan.get('fingerprint')}, this worker runs {fingerprint}; "
            f"refusing to mix results from different code"
        )
    scenario_id = str(plan["scenario"])
    stats.scenario = scenario_id
    requests = decode_requests(plan)
    items: List[dict] = list(plan["items"])
    run_store = store
    if run_store is None and plan.get("store"):
        run_store = RunStore(plan["store"])

    journal, telemetry = _open_segments(
        transport, wid, scenario_id, fingerprint
    )

    try:
        while True:
            transport.heartbeat(wid)
            published = transport.result_indices()
            missing = [
                i for i, item in enumerate(items)
                if any(idx not in published for idx in item["indices"])
            ]
            if not missing:
                break
            progressed = False
            for index in missing:
                if max_items is not None and stats.claimed >= max_items:
                    return stats
                lease = transport.try_claim(item_id(index), wid, lease_ttl)
                if lease is None:
                    continue
                item = items[index]
                published = transport.result_indices()
                if all(idx in published for idx in item["indices"]):
                    # the missing-scan was stale: another worker
                    # finished this item between our scan and our
                    # claim — executing it again would only produce
                    # duplicates, so hand the lease straight back
                    transport.release(item_id(index), wid)
                    progressed = True
                    continue
                stats.claimed += 1
                if lease.attempt > 1:
                    stats.takeovers += 1
                if REGISTRY.enabled:
                    REGISTRY.counter("fabric.items_claimed").inc()
                    if lease.attempt > 1:
                        REGISTRY.counter("fabric.takeovers").inc()
                group = [requests[idx] for idx in item["indices"]]
                work = (
                    ("batch", group) if item["kind"] == "batch"
                    else ("one", group[0])
                )
                with _LeaseRenewer(transport, item_id(index), wid,
                                   lease_ttl):
                    outcomes = engine.execute_item(work)
                for idx, outcome in zip(item["indices"], outcomes):
                    journal.append(outcome)
                    telemetry.append_point(outcome)
                    stats.executed_points += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter("fabric.points_executed").inc()
                    if outcome.error:
                        stats.errors += 1
                    elif run_store is not None:
                        run_store.put(outcome)
                    if transport.publish_result(
                        idx, _result_record(outcome, wid)
                    ):
                        stats.published += 1
                    else:
                        stats.duplicate_results += 1
                        if REGISTRY.enabled:
                            REGISTRY.counter(
                                "fabric.duplicate_results"
                            ).inc()
                transport.release(item_id(index), wid)
                transport.heartbeat(wid)
                progressed = True
            if once:
                break
            if not progressed:
                # everything missing is leased elsewhere: wait for the
                # owners to publish or their leases to expire
                time.sleep(poll_s)
    finally:
        telemetry.finish({
            "worker": wid,
            "points": stats.executed_points,
            "failures": stats.errors,
            "claimed": stats.claimed,
            "takeovers": stats.takeovers,
        })
    return stats
