"""Lease protocol and the shared-directory transport.

The fabric's control plane is four tiny record kinds:

* the **plan** — one document naming the scenario, the code
  fingerprint, every grid request in canonical order, and the work
  items (solo requests or batch-packed groups) the engine planned;
* **leases** — one record per in-flight work item: owner, deadline,
  attempt count.  A worker that stops heartbeating lets its deadline
  lapse; anyone may then take the lease over (attempt + 1);
* **results** — one published record per completed grid point, keyed
  by the point's index in the plan.  Publishing is idempotent: the
  first record wins, duplicates are dropped (two workers racing the
  same re-leased point compute canonically identical records anyway —
  the store content key pins that);
* **worker heartbeats** — liveness beacons the coordinator turns into
  gauges.

:class:`Transport` is the abstract surface; :class:`FileTransport`
implements it over a shared directory with the repo's usual atomicity
discipline (exclusive create for claims, write-temp-then-rename for
everything else), so the fabric works across processes — and across
machines sharing a mount — with no daemon in the middle.  A socket
transport can slot in behind the same surface later.

Layout::

    <fabric>/
      plan.json                     # the grid + work items
      leases/item-000007.json       # one lease per claimed work item
      results/000042.json           # one record per completed point
      workers/<id>/heartbeat.json   # liveness beacon
      workers/<id>/journal.jsonl    # per-worker journal segment
      workers/<id>/telemetry.jsonl  # per-worker telemetry segment
"""

from __future__ import annotations

import abc
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from ..obs.metrics import REGISTRY
from ..runner.engine import RunRequest
from ..store import codec

PLAN_FILENAME = "plan.json"
PLAN_VERSION = 1

#: extra slack beyond the lease deadline before anyone may take over —
#: absorbs clock skew between hosts sharing a mount
EXPIRY_GRACE_S = 1.0


class FabricError(RuntimeError):
    """Fabric misuse: missing plan, plan mismatch, worker exhaustion."""


def worker_identity(prefix: str = "wk") -> str:
    """A collision-safe worker id: host, pid, and a random suffix.

    Owner equality is what the lease protocol trusts, so two workers
    must never share an identity — not even a respawned worker on the
    same host reusing a pid.
    """
    return (
        f"{prefix}-{socket.gethostname()}-{os.getpid()}"
        f"-{uuid.uuid4().hex[:6]}"
    )


@dataclass(frozen=True)
class LeaseRecord:
    """One work item's ownership claim."""

    item: str
    owner: str
    deadline: float  # unix epoch seconds
    attempt: int = 1

    def expired(self, now: Optional[float] = None) -> bool:
        if now is None:
            now = time.time()
        return now > self.deadline + EXPIRY_GRACE_S

    def to_json(self) -> Dict[str, object]:
        return {
            "item": self.item,
            "owner": self.owner,
            "deadline": self.deadline,
            "attempt": self.attempt,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "LeaseRecord":
        return cls(
            item=str(data["item"]),
            owner=str(data["owner"]),
            deadline=float(data["deadline"]),
            attempt=int(data.get("attempt", 1)),
        )


def item_id(index: int) -> str:
    """Stable lease id of the ``index``-th planned work item."""
    return f"item-{index:06d}"


def encode_requests(requests: Sequence[RunRequest]) -> List[dict]:
    """Plan-document encoding of the grid, in canonical order."""
    return [
        {
            "params": [[name, value] for name, value in r.params],
            "fast": r.fast,
        }
        for r in requests
    ]


def decode_requests(plan: Dict[str, object]) -> List[RunRequest]:
    """Rebuild the grid requests exactly as the coordinator planned them.

    Values were coerced before planning and JSON round-trips every
    coerced type loss-free, so the rebuilt requests hash — and content-
    address — identically to the originals.
    """
    scenario_id = str(plan["scenario"])
    return [
        RunRequest(
            scenario_id=scenario_id,
            params=tuple((name, value) for name, value in r["params"]),
            fast=bool(r["fast"]),
        )
        for r in plan["requests"]
    ]


class Transport(abc.ABC):
    """The fabric control-plane surface.

    Everything the coordinator and workers say to each other goes
    through these calls; swapping the shared directory for a socket
    protocol means implementing exactly this class.
    """

    # -- plan ----------------------------------------------------------
    @abc.abstractmethod
    def read_plan(self) -> Optional[Dict[str, object]]:
        """The current plan document, or ``None`` before seeding."""

    @abc.abstractmethod
    def write_plan(self, plan: Dict[str, object]) -> None:
        """Atomically publish the plan document."""

    # -- leases --------------------------------------------------------
    @abc.abstractmethod
    def try_claim(self, item: str, owner: str,
                  ttl: float) -> Optional[LeaseRecord]:
        """Claim an unleased (or expired) item; ``None`` if lost."""

    @abc.abstractmethod
    def renew(self, item: str, owner: str, ttl: float) -> bool:
        """Heartbeat an owned lease; ``False`` if ownership was lost."""

    @abc.abstractmethod
    def release(self, item: str, owner: str) -> None:
        """Drop an owned lease (after its results are published)."""

    @abc.abstractmethod
    def lease(self, item: str) -> Optional[LeaseRecord]:
        """The item's current lease record, if any."""

    @abc.abstractmethod
    def leases(self) -> Dict[str, LeaseRecord]:
        """Every live lease record by item id."""

    @abc.abstractmethod
    def break_lease(self, item: str) -> bool:
        """Coordinator-side: delete a lease so the item is claimable."""

    # -- results -------------------------------------------------------
    @abc.abstractmethod
    def publish_result(self, index: int,
                       record: Dict[str, object]) -> bool:
        """Idempotently publish one point; ``False`` if already there."""

    @abc.abstractmethod
    def read_result(self, index: int) -> Optional[Dict[str, object]]:
        """The published record for one point, if any."""

    @abc.abstractmethod
    def discard_result(self, index: int) -> bool:
        """Coordinator-side: drop a corrupt record so it is republished."""

    @abc.abstractmethod
    def result_indices(self) -> Set[int]:
        """Indices of every published point."""

    # -- workers -------------------------------------------------------
    @abc.abstractmethod
    def heartbeat(self, worker_id: str) -> None:
        """Record that ``worker_id`` is alive right now."""

    @abc.abstractmethod
    def worker_ids(self) -> List[str]:
        """Every worker that ever attached, sorted."""

    @abc.abstractmethod
    def alive_workers(self, ttl: float) -> List[str]:
        """Workers whose heartbeat is fresher than ``ttl`` seconds."""


class FileTransport(Transport):
    """The shared-directory transport (see the module docstring)."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    @property
    def plan_path(self) -> Path:
        return self.root / PLAN_FILENAME

    def _lease_path(self, item: str) -> Path:
        return self.root / "leases" / f"{item}.json"

    def _result_path(self, index: int) -> Path:
        return self.root / "results" / f"{index:06d}.json"

    def worker_dir(self, worker_id: str) -> Path:
        """Per-worker segment directory (journal + telemetry live here)."""
        path = self.root / "workers" / worker_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def segment_journals(self) -> List[Path]:
        """Every worker's journal segment, sorted by worker id."""
        workers = self.root / "workers"
        if not workers.is_dir():
            return []
        return sorted(workers.glob("*/journal.jsonl"))

    def segment_streams(self) -> List[Path]:
        """Every worker's telemetry segment, sorted by worker id."""
        workers = self.root / "workers"
        if not workers.is_dir():
            return []
        return sorted(workers.glob("*/telemetry.jsonl"))

    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, payload: Dict[str, object]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
        )
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, object]]:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # a reader racing os.replace never sees half a file, but a
            # crashed writer's debris (or a foreign file) reads as "not
            # a record" rather than an exception — counted so recovery
            # paths are observable instead of silent
            if REGISTRY.enabled:
                REGISTRY.counter("fabric.corrupt_records").inc()
            return None

    # -- plan ----------------------------------------------------------
    def read_plan(self) -> Optional[Dict[str, object]]:
        return self._read_json(self.plan_path)

    def write_plan(self, plan: Dict[str, object]) -> None:
        self._write_atomic(self.plan_path, plan)

    # -- leases --------------------------------------------------------
    def try_claim(self, item: str, owner: str,
                  ttl: float) -> Optional[LeaseRecord]:
        now = time.time()
        path = self._lease_path(item)
        record = LeaseRecord(item=item, owner=owner,
                             deadline=now + ttl, attempt=1)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self.lease(item)
            if existing is not None and not existing.expired(now):
                return None
            # stale takeover: replace the record, then read back — the
            # last writer wins and only the winner sees itself as owner.
            # An unreadable record (a writer died mid-write) is stale
            # too: leaving it in place would block the item forever.
            attempt = existing.attempt + 1 if existing else 1
            record = LeaseRecord(item=item, owner=owner,
                                 deadline=now + ttl,
                                 attempt=attempt)
            self._write_atomic(path, record.to_json())
            current = self.lease(item)
            if (current is not None and current.owner == owner
                    and current.deadline == record.deadline):
                return record
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        return record

    def renew(self, item: str, owner: str, ttl: float) -> bool:
        path = self._lease_path(item)
        existing = self.lease(item)
        if existing is None or existing.owner != owner:
            return False
        renewed = LeaseRecord(item=item, owner=owner,
                              deadline=time.time() + ttl,
                              attempt=existing.attempt)
        self._write_atomic(path, renewed.to_json())
        return True

    def release(self, item: str, owner: str) -> None:
        existing = self.lease(item)
        if existing is not None and existing.owner == owner:
            self._lease_path(item).unlink(missing_ok=True)

    def lease(self, item: str) -> Optional[LeaseRecord]:
        data = self._read_json(self._lease_path(item))
        if data is None:
            return None
        try:
            return LeaseRecord.from_json(data)
        except (KeyError, TypeError, ValueError):
            return None

    def leases(self) -> Dict[str, LeaseRecord]:
        leases_dir = self.root / "leases"
        out: Dict[str, LeaseRecord] = {}
        if not leases_dir.is_dir():
            return out
        for path in sorted(leases_dir.glob("item-*.json")):
            record = self.lease(path.stem)
            if record is not None:
                out[record.item] = record
        return out

    def break_lease(self, item: str) -> bool:
        path = self._lease_path(item)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    # -- results -------------------------------------------------------
    def publish_result(self, index: int,
                       record: Dict[str, object]) -> bool:
        path = self._result_path(index)
        if path.exists():
            existing = self._read_json(path)
            if (existing is not None
                    and codec.verify_hash(existing) is not False):
                return False
            # unreadable or checksum-failed debris at the result path
            # (a torn non-atomic write) would otherwise block the real
            # record forever — overwrite it
            if REGISTRY.enabled:
                REGISTRY.counter("fabric.corrupt_results").inc()
        self._write_atomic(path, record)
        return True

    def read_result(self, index: int) -> Optional[Dict[str, object]]:
        return self._read_json(self._result_path(index))

    def discard_result(self, index: int) -> bool:
        try:
            self._result_path(index).unlink()
        except FileNotFoundError:
            return False
        return True

    def result_indices(self) -> Set[int]:
        results = self.root / "results"
        if not results.is_dir():
            return set()
        out: Set[int] = set()
        for path in results.glob("*.json"):
            try:
                out.add(int(path.stem))
            except ValueError:
                continue
        return out

    # -- workers -------------------------------------------------------
    def heartbeat(self, worker_id: str) -> None:
        self._write_atomic(
            self.worker_dir(worker_id) / "heartbeat.json",
            {"worker": worker_id, "t": time.time(), "pid": os.getpid()},
        )

    def worker_ids(self) -> List[str]:
        workers = self.root / "workers"
        if not workers.is_dir():
            return []
        return sorted(p.name for p in workers.iterdir() if p.is_dir())

    def alive_workers(self, ttl: float) -> List[str]:
        now = time.time()
        alive = []
        for worker_id in self.worker_ids():
            data = self._read_json(
                self.root / "workers" / worker_id / "heartbeat.json"
            )
            if data and now - float(data.get("t", 0.0)) <= ttl:
                alive.append(worker_id)
        return alive
