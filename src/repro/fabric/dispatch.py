"""Capacity-limited deferred dispatch.

The coordinator must keep many things in flight — worker subprocesses
to supervise, stale leases to break, results to ingest — without ever
running more than a bounded number of them at once.  The shape is the
``cs/later.py`` pattern: *submit* returns immediately with a handle,
at most ``capacity`` submitted callables execute concurrently, and
everything beyond capacity queues FIFO until a slot frees.

Unlike a fixed worker pool, submission is cheap and unbounded: the
queue holds thunks, not threads, so seeding ten thousand dispatch
tasks costs ten thousand list entries.  Threads are created per
*running* callable only (the work here is subprocess supervision and
file I/O — GIL-friendly; CPU-bound scenario execution stays in the
engine's process pool or in worker daemons).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, List, Optional


class Deferred:
    """Handle for one submitted callable: result-or-exception, later.

    ``wait`` blocks until completion; ``result()`` re-raises whatever
    the callable raised.  Completion callbacks added after completion
    fire immediately (no lost-wakeup window).
    """

    __slots__ = ("label", "_event", "_result", "_exception", "_callbacks",
                 "_lock")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._event = threading.Event()
        self._result: object = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Deferred"], None]] = []
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"deferred {self.label or '<anonymous>'} still pending "
                f"after {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(
        self, callback: Callable[["Deferred"], None]
    ) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # ------------------------------------------------------------------
    def _complete(self, result: object,
                  exception: Optional[BaseException]) -> None:
        with self._lock:
            self._result = result
            self._exception = exception
            callbacks = self._callbacks
            self._callbacks = []
            self._event.set()
        for callback in callbacks:
            callback(self)


class CapacityDispatcher:
    """Run submitted callables with bounded concurrency, FIFO overflow.

    ``capacity`` slots; a submission beyond capacity waits in a deque
    and is started the moment a running callable finishes.  Exceptions
    are captured on the :class:`Deferred` (a raising task never kills
    the dispatcher).  ``drain`` waits for everything submitted so far;
    ``close`` rejects new work and drains.
    """

    def __init__(self, capacity: int, name: str = "dispatch") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._running = 0
        self._pending: Deque[tuple] = deque()
        self._all: List[Deferred] = []
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, func: Callable[..., object], *args,
               label: str = "") -> Deferred:
        """Queue ``func(*args)``; it runs when a capacity slot frees."""
        deferred = Deferred(label=label or getattr(func, "__name__", ""))
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    f"dispatcher {self.name!r} is closed"
                )
            self._all.append(deferred)
            if self._running < self.capacity:
                self._running += 1
                self._start(func, args, deferred)
            else:
                self._pending.append((func, args, deferred))
        return deferred

    def _start(self, func, args, deferred: Deferred) -> None:
        thread = threading.Thread(
            target=self._run, args=(func, args, deferred),
            name=f"{self.name}:{deferred.label}", daemon=True,
        )
        thread.start()

    def _run(self, func, args, deferred: Deferred) -> None:
        try:
            result = func(*args)
        except BaseException as exc:  # captured, reported via the handle
            deferred._complete(None, exc)
        else:
            deferred._complete(result, None)
        with self._lock:
            if self._pending:
                nfunc, nargs, ndeferred = self._pending.popleft()
                self._start(nfunc, nargs, ndeferred)
            else:
                self._running -= 1
                if self._running == 0:
                    self._idle.notify_all()

    def failures(self) -> List[Deferred]:
        """Completed submissions that raised, in submission order.

        The supervising caller polls this to surface a failed task
        promptly (e.g. a worker slot that exhausted its restarts) —
        exceptions are captured on the handles, never raised here.
        """
        with self._lock:
            snapshot = list(self._all)
        return [
            deferred for deferred in snapshot
            if deferred.done and deferred.exception is not None
        ]

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every submission so far has completed."""
        with self._lock:
            snapshot = list(self._all)
        deadline = None if timeout is None else (
            _monotonic() + timeout
        )
        for deferred in snapshot:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - _monotonic())
            if not deferred.wait(remaining):
                return False
        return True

    def close(self, timeout: Optional[float] = None) -> bool:
        """Refuse new submissions, then drain what is in flight."""
        with self._lock:
            self._closed = True
        return self.drain(timeout)


def _monotonic() -> float:
    import time

    return time.monotonic()
