"""Mesh-level cost model: the paper's link metrics scaled to a NoC.

The paper's introduction motivates serialization with the *growth* of
point-to-point links as more cores integrate; this module quantifies
that: for an N×M mesh with a given inter-switch wire length it combines

* the wire count per link (Fig 10),
* the wiring area per link (Fig 11),
* the circuit area per link (Tables 1–2),
* the link power (Figs 12–13)

into one cost sheet per link implementation, so the head-to-head
comparison the paper makes for a single link can be read for a whole
chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..tech.technology import Technology
from ..noc.topology import Topology
from .area import link_area, wire_area_um2
from .power import link_power_uw


@dataclass(frozen=True)
class MeshCost:
    """Aggregate cost of wiring one mesh with one link implementation."""

    kind: str
    n_links: int
    wires_per_link: int
    total_wires: int
    wiring_area_um2: float
    circuit_area_um2: float
    link_power_uw: float

    @property
    def total_area_um2(self) -> float:
        return self.wiring_area_um2 + self.circuit_area_um2

    @property
    def total_power_mw(self) -> float:
        return self.link_power_uw / 1000.0


def mesh_cost(
    tech: Technology,
    topology: Topology,
    kind: str,
    link_length_um: float = 1000.0,
    n_buffers: int = 4,
    freq_mhz: float = 300.0,
    usage: float = 0.5,
    flit_width: int = 32,
    slice_width: int = 8,
    count_control: bool = True,
) -> MeshCost:
    """Cost sheet for ``topology`` wired entirely with link ``kind``.

    ``count_control`` includes the request/acknowledge (or valid/ack)
    pair in the wire tally for the serial links — the honest total; the
    paper's Fig 10 counts data wires only.
    """
    kind = kind.upper()
    n_links = topology.n_directed_links
    if kind == "I1":
        wires = flit_width
    elif kind in ("I2", "I3"):
        wires = slice_width + (2 if count_control else 0)
    else:
        raise ValueError(f"unknown link kind {kind!r}")

    per_link_wiring = wire_area_um2(wires, link_length_um, tech)
    per_link_circuit = link_area(tech, kind, n_buffers).total_um2
    per_link_power = link_power_uw(tech, kind, n_buffers, freq_mhz, usage)

    return MeshCost(
        kind=kind,
        n_links=n_links,
        wires_per_link=wires,
        total_wires=wires * n_links,
        wiring_area_um2=per_link_wiring * n_links,
        circuit_area_um2=per_link_circuit * n_links,
        link_power_uw=per_link_power * n_links,
    )


def mesh_cost_comparison(
    tech: Technology,
    topology: Topology,
    link_length_um: float = 1000.0,
    n_buffers: int = 4,
    freq_mhz: float = 300.0,
    usage: float = 0.5,
) -> Dict[str, MeshCost]:
    """Cost sheets for all three implementations on the same mesh."""
    return {
        kind: mesh_cost(
            tech, topology, kind, link_length_um, n_buffers, freq_mhz, usage
        )
        for kind in ("I1", "I2", "I3")
    }
