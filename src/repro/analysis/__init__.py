"""Evaluation models: timing, wires, area, power, reporting.

Each module maps to part of the paper's Section V:

* :mod:`repro.analysis.timing` — the per-transfer/per-word cycle-delay
  equations and throughput upper bounds;
* :mod:`repro.analysis.wires` — wires-vs-bandwidth (Fig 10);
* :mod:`repro.analysis.area` — wiring area (Fig 11) and circuit area
  (Tables 1–2);
* :mod:`repro.analysis.power` — analytical power (Figs 12–14) and
  activity-based shape verification;
* :mod:`repro.analysis.report` — the ASCII table/series renderers the
  benchmark harness prints.
"""

from .timing import (
    ThroughputEstimate,
    link_upper_bound_mflits,
    per_transfer_cycle_delay,
    per_word_cycle_delay,
    scaled_word_timings,
    sync_link_throughput,
)
from .wires import (
    WireCountPoint,
    async_wires_needed,
    fig10_series,
    sync_wires_needed,
)
from .area import (
    AreaBreakdown,
    fig11_series,
    link_area,
    table1,
    table2,
    wire_area_um2,
)
from .power import (
    COMPONENT_CATEGORIES,
    ActivityReport,
    buffer_sweep,
    link_power_uw,
    measure_link_activity,
    power_breakdown,
    power_saving_percent,
)
from .cost import MeshCost, mesh_cost, mesh_cost_comparison
from .report import format_series, format_table, relative_error, within

__all__ = [
    "ThroughputEstimate",
    "link_upper_bound_mflits",
    "per_transfer_cycle_delay",
    "per_word_cycle_delay",
    "scaled_word_timings",
    "sync_link_throughput",
    "WireCountPoint",
    "async_wires_needed",
    "fig10_series",
    "sync_wires_needed",
    "AreaBreakdown",
    "fig11_series",
    "link_area",
    "table1",
    "table2",
    "wire_area_um2",
    "COMPONENT_CATEGORIES",
    "ActivityReport",
    "buffer_sweep",
    "link_power_uw",
    "measure_link_activity",
    "power_breakdown",
    "power_saving_percent",
    "MeshCost",
    "mesh_cost",
    "mesh_cost_comparison",
    "format_series",
    "format_table",
    "relative_error",
    "within",
]
