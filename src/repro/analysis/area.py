"""Area models: wiring area (Fig 11) and circuit area (Tables 1–2).

Wiring area follows the paper's equation for ``N`` parallel wires of
length ``L`` at minimum width/gap::

    AREA = L × (N × MetW + (N + 1) × MetG)

(each wire is MetW wide; N wires need N+1 gaps to the neighbours).  For
METAL6 in ST 0.12 µm (MetW = 0.44 µm, MetG = 0.46 µm) this gives the
published ≈30 000 µm² for the 32-wire link and ≈7 500 µm² for the 8-wire
link at L = 1000 µm.

Circuit area is a straight module-table sum; the I2 breakdown is
Table 2 verbatim, the I1/I3 totals land on Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..tech.technology import Technology


def wire_area_um2(
    n_wires: int,
    length_um: float,
    tech: Technology,
) -> float:
    """The paper's Fig 11 wiring-area equation."""
    if n_wires < 1:
        raise ValueError(f"need at least one wire, got {n_wires}")
    if length_um < 0:
        raise ValueError(f"length must be non-negative, got {length_um}")
    met = tech.metal
    return length_um * (n_wires * met.met_w_um + (n_wires + 1) * met.met_g_um)


def fig11_series(
    tech: Technology,
    lengths_um: Sequence[float] = tuple(range(0, 3001, 250)),
    sync_wires: int = 32,
    async_wires: int = 8,
) -> dict[str, list[tuple[float, float]]]:
    """The two Fig 11 curves: (length, area) pairs for I1 and I2/I3."""
    return {
        "I1-Synch": [
            (length, wire_area_um2(sync_wires, length, tech))
            for length in lengths_um
        ],
        "I2 & I3-Asynch (proposed)": [
            (length, wire_area_um2(async_wires, length, tech))
            for length in lengths_um
        ],
    }


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-module circuit area of one link implementation, µm²."""

    modules: Dict[str, float]
    quantities: Dict[str, int]

    @property
    def total_um2(self) -> float:
        return sum(
            self.modules[name] * self.quantities[name] for name in self.modules
        )

    def rows(self) -> list[tuple[str, float, int]]:
        """(module, area, qty) rows in insertion order — Table 2 format."""
        return [
            (name, self.modules[name], self.quantities[name])
            for name in self.modules
        ]


def link_area(tech: Technology, kind: str, n_buffers: int = 4) -> AreaBreakdown:
    """Circuit-area breakdown for I1 / I2 / I3 with ``n_buffers``."""
    a = tech.areas
    kind = kind.upper()
    if kind == "I1":
        return AreaBreakdown(
            modules={"Synchronous buffer": a.sync_buffer},
            quantities={"Synchronous buffer": n_buffers},
        )
    if kind == "I2":
        return AreaBreakdown(
            modules={
                "Synch to Asynch interface": a.sync_to_async,
                "Asynch 32 to 8 serializer": a.serializer_i2,
                "Asynch 8 wire buffer": a.wire_buffer_i2,
                "Asynch 8 to 32 de-serializer": a.deserializer_i2,
                "Asynch to Synch interface": a.async_to_sync,
            },
            quantities={
                "Synch to Asynch interface": 1,
                "Asynch 32 to 8 serializer": 1,
                "Asynch 8 wire buffer": n_buffers,
                "Asynch 8 to 32 de-serializer": 1,
                "Asynch to Synch interface": 1,
            },
        )
    if kind == "I3":
        return AreaBreakdown(
            modules={
                "Synch to Asynch interface": a.sync_to_async,
                "Asynch 32 to 8 word serializer": a.serializer_i3,
                "Inverter repeater station": a.wire_buffer_i3,
                "Asynch 8 to 32 word de-serializer": a.deserializer_i3,
                "Asynch to Synch interface": a.async_to_sync,
            },
            quantities={
                "Synch to Asynch interface": 1,
                "Asynch 32 to 8 word serializer": 1,
                "Inverter repeater station": n_buffers,
                "Asynch 8 to 32 word de-serializer": 1,
                "Asynch to Synch interface": 1,
            },
        )
    raise ValueError(f"unknown link kind {kind!r}")


def table1(tech: Technology, n_buffers: int = 4) -> dict[str, float]:
    """Table 1: total circuit area of each implementation, µm²."""
    return {
        "Synchronous (I1)": link_area(tech, "I1", n_buffers).total_um2,
        "Asynchronous per-transfer ack. (I2)": link_area(
            tech, "I2", n_buffers
        ).total_um2,
        "Asynchronous per-word ack. (I3)": link_area(
            tech, "I3", n_buffers
        ).total_um2,
    }


def table2(tech: Technology, n_buffers: int = 4) -> AreaBreakdown:
    """Table 2: the module-level breakdown of implementation I2."""
    return link_area(tech, "I2", n_buffers)


# ----------------------------------------------------------------------
# tree-walking area (hierarchy API)
# ----------------------------------------------------------------------
#: canonical Table 1/2 row order per link kind, as link_area() emits it
_CANONICAL_ORDER = {
    "I1": ("Synchronous buffer",),
    "I2": (
        "Synch to Asynch interface",
        "Asynch 32 to 8 serializer",
        "Asynch 8 wire buffer",
        "Asynch 8 to 32 de-serializer",
        "Asynch to Synch interface",
    ),
    "I3": (
        "Synch to Asynch interface",
        "Asynch 32 to 8 word serializer",
        "Inverter repeater station",
        "Asynch 8 to 32 word de-serializer",
        "Asynch to Synch interface",
    ),
}


def _tree_classifier(tech: Technology):
    """(component class → (module label, unit area)) for tree walking."""
    from ..elements.fourphase import WireBufferStage
    from ..link.async_sync import AsyncToSyncInterface
    from ..link.serializer import Deserializer, Serializer
    from ..link.sync_async import SyncToAsyncInterface
    from ..link.wiring import RepeatedWireBus
    from ..link.word_level import WordDeserializer, WordSerializer

    a = tech.areas
    return (
        (SyncToAsyncInterface, "Synch to Asynch interface", a.sync_to_async),
        (AsyncToSyncInterface, "Asynch to Synch interface", a.async_to_sync),
        (Serializer, "Asynch 32 to 8 serializer", a.serializer_i2),
        (Deserializer, "Asynch 8 to 32 de-serializer", a.deserializer_i2),
        (WireBufferStage, "Asynch 8 wire buffer", a.wire_buffer_i2),
        (WordSerializer, "Asynch 32 to 8 word serializer", a.serializer_i3),
        (WordDeserializer, "Asynch 8 to 32 word de-serializer",
         a.deserializer_i3),
        (RepeatedWireBus, "Inverter repeater station", a.wire_buffer_i3),
    )


def instance_area_rows(link, tech: Technology) -> list:
    """Per-instance (path, module label, area µm²) rows for a built link.

    Walks the link's instance tree instead of consulting a
    hand-maintained module table: every component whose class maps to a
    Table 1/2 module contributes one row at its own instance path.  The
    synchronous pipeline (a single component holding ``n_buffers``
    register stages) expands to one row per stage, matching the paper's
    per-buffer accounting.
    """
    from ..link.sync_link import SyncPipelineLink

    classifier = _tree_classifier(tech)
    rows = []
    for path, comp in link.walk():
        if isinstance(comp, SyncPipelineLink):
            for i in range(comp.n_buffers):
                rows.append(
                    (f"{path}.st{i}", "Synchronous buffer",
                     tech.areas.sync_buffer)
                )
            continue
        for cls, label, area in classifier:
            if isinstance(comp, cls):
                rows.append((path, label, area))
                break
    return rows


def link_area_from_tree(link, tech: Technology) -> AreaBreakdown:
    """Area breakdown derived by walking a built link's instance tree.

    Pins against :func:`link_area`: same module labels, quantities and
    total — but the quantities are *counted from the structure* (how
    many wire-buffer stages were actually built) rather than assumed.
    """
    modules: Dict[str, float] = {}
    quantities: Dict[str, int] = {}
    for _path, label, area in instance_area_rows(link, tech):
        modules[label] = area
        quantities[label] = quantities.get(label, 0) + 1
    order = _CANONICAL_ORDER.get(getattr(link, "kind", "").upper())
    if order:
        ordered = [label for label in order if label in modules]
        ordered += [label for label in modules if label not in ordered]
        modules = {label: modules[label] for label in ordered}
        quantities = {label: quantities[label] for label in ordered}
    return AreaBreakdown(modules=modules, quantities=quantities)
