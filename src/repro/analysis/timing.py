"""Analytical delay/throughput models (Section V of the paper).

The paper closes its evaluation with two cycle-delay equations that
upper-bound the serial links' throughput:

per-transfer (I2, Fig 15)::

    D = n_slices * (n_tp * Tp + Treqreq + Treqack + Tackack + Tackout)
        + Tnextflit

per-word (I3, Fig 16)::

    D = n_segments_roundtrip * Tp + n_inverters * Tinv
        + Tvalidwordack + Tackout + Tburst

With the paper's measured constants (Tp = 0, Tinv = 0.011 ns,
Tburst ≈ 1.1 ns, Tvalidwordack ≈ 0.7 ns, Tackout ≈ 1.4 ns) the per-word
delay evaluates to ≈3.29 ns → ≈304 MFlit/s.  The paper quotes 3.21 ns /
≈311 MFlit/s from the same inputs — a ~2 % arithmetic discrepancy in the
original; we reproduce the formula faithfully and document the gap in
EXPERIMENTS.md.  Both round to the "~300 MFlit/s at a 300 MHz switch
clock" headline.

The segment/inverter counts generalize with the buffer count ``k``:
forward path ``k+1`` segments with ``2k`` repeater inverters, acknowledge
return ``k+1`` segments — for the paper's ``k = 4``: 10 Tp and 8 Tinv,
matching the published equation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tech.technology import HandshakeTimings, Technology


@dataclass(frozen=True)
class ThroughputEstimate:
    """Result of an analytical link-delay evaluation."""

    cycle_delay_ps: float
    #: upper-bound throughput in MFlit/s
    mflits: float

    @property
    def cycle_delay_ns(self) -> float:
        return self.cycle_delay_ps / 1000.0


def per_transfer_cycle_delay(
    timings: HandshakeTimings,
    n_slices: int = 4,
    n_buffers: int = 4,
) -> ThroughputEstimate:
    """I2 cycle delay: every slice pays a full request/acknowledge cycle.

    ``n_buffers`` sets the wire-segment count per slice (the paper's
    four-buffer link has four Tp terms inside the parenthesis).
    """
    if n_slices < 1 or n_buffers < 1:
        raise ValueError(
            f"counts must be >= 1: n_slices={n_slices}, n_buffers={n_buffers}"
        )
    per_slice = (
        n_buffers * timings.t_p_per_segment
        + timings.t_reqreq
        + timings.t_reqack
        + timings.t_ackack
        + timings.t_ackout_i2
    )
    delay = n_slices * per_slice + timings.t_nextflit
    return ThroughputEstimate(delay, 1e6 / delay)


def scaled_word_timings(
    timings: HandshakeTimings, n_slices: int, reference_slices: int = 4
) -> HandshakeTimings:
    """Rescale the burst period for a different serialization ratio.

    The calibrated ``t_burst`` covers ``reference_slices`` slice launches
    (the paper's 32→8 configuration); changing the slice width changes
    the number of launches per word while the per-slice interval — set by
    the ring oscillator — stays fixed.
    """
    from dataclasses import replace

    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    per_slice = timings.t_burst // reference_slices
    return replace(timings, t_burst=per_slice * n_slices)


def per_word_cycle_delay(
    timings: HandshakeTimings,
    n_slices: int = 4,
    n_buffers: int = 4,
    inverters_per_station: int = 2,
) -> ThroughputEstimate:
    """I3 cycle delay: one burst plus one word-level ack round trip."""
    if n_slices < 1 or n_buffers < 1:
        raise ValueError(
            f"counts must be >= 1: n_slices={n_slices}, n_buffers={n_buffers}"
        )
    n_segments_roundtrip = 2 * (n_buffers + 1)
    n_inverters = inverters_per_station * n_buffers
    delay = (
        n_segments_roundtrip * timings.t_p_per_segment
        + n_inverters * timings.t_inv
        + timings.t_validwordack
        + timings.t_ackout_i3
        + timings.t_burst
    )
    return ThroughputEstimate(delay, 1e6 / delay)


def sync_link_throughput(freq_mhz: float) -> ThroughputEstimate:
    """I1 accepts one flit per switch clock: throughput = f."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive: {freq_mhz}")
    period_ps = 1e6 / freq_mhz
    return ThroughputEstimate(period_ps, freq_mhz)


def link_upper_bound_mflits(
    tech: Technology,
    kind: str,
    freq_mhz: float,
    n_slices: int = 4,
    n_buffers: int = 4,
) -> float:
    """Deliverable throughput of a link *behind a switch at* ``freq_mhz``.

    The switch injects at most one flit per clock, so the serial links
    saturate at ``min(f, serial ceiling)``.
    """
    kind = kind.upper()
    if kind == "I1":
        return sync_link_throughput(freq_mhz).mflits
    if kind == "I2":
        ceiling = per_transfer_cycle_delay(
            tech.handshake, n_slices, n_buffers
        ).mflits
    elif kind == "I3":
        ceiling = per_word_cycle_delay(
            tech.handshake, n_slices, n_buffers
        ).mflits
    else:
        raise ValueError(f"unknown link kind {kind!r}")
    return min(freq_mhz, ceiling)


# ----------------------------------------------------------------------
# tree-walking timing (hierarchy API)
# ----------------------------------------------------------------------
def link_timing_from_tree(link, tech: Technology) -> ThroughputEstimate:
    """Cycle-delay estimate with every count read off the built tree.

    The analytical models take slice and buffer counts as parameters;
    here they are *derived from the structure* — how many wire-buffer
    stages / repeater stations the link actually instantiated, and the
    serializer's real slicing factor — so the estimate can never drift
    from the netlist.  The synchronous link has no serial cycle delay
    and raises ``ValueError``.
    """
    from ..elements.fourphase import WireBufferStage
    from ..link.serializer import Serializer
    from ..link.wiring import RepeatedWireBus
    from ..link.word_level import WordSerializer

    serializer = word_serializer = None
    n_wire_buffers = n_stations = 0
    inverters_per_station = 2
    for _path, comp in link.walk():
        if isinstance(comp, Serializer):
            serializer = comp
        elif isinstance(comp, WordSerializer):
            word_serializer = comp
        elif isinstance(comp, WireBufferStage):
            n_wire_buffers += 1
        elif isinstance(comp, RepeatedWireBus):
            n_stations += 1
            inverters_per_station = comp.n_inverters
    if word_serializer is not None:
        timings = scaled_word_timings(
            tech.handshake, word_serializer.n_slices
        )
        return per_word_cycle_delay(
            timings,
            n_slices=word_serializer.n_slices,
            n_buffers=max(1, n_stations),
            inverters_per_station=inverters_per_station,
        )
    if serializer is not None:
        return per_transfer_cycle_delay(
            tech.handshake,
            n_slices=serializer.n_slices,
            n_buffers=max(1, n_wire_buffers),
        )
    raise ValueError(
        f"{getattr(link, 'name', link)!r} has no serializer: the "
        "synchronous link is clock-bound (use sync_link_throughput)"
    )
