"""Power models reproducing Figs 12–14.

Two complementary estimates (DESIGN.md §6):

**Analytical** — per-component linear models in clock frequency and link
usage, with coefficients calibrated in :mod:`repro.tech.st012` against
every power number the paper publishes.  This regenerates the absolute
µW values of Figs 12–14.

**Activity-based** — the event-driven link simulation counts transitions
on every net, grouped by component.  Absolute watts cannot come out of a
behavioural simulation (the paper's numbers came from transistor-level
Spectre runs), so this path reports *switched activity* (cap-weighted
transitions per flit) and is used to verify the paper's shape claims:

* I1 buffer activity grows linearly with the buffer count; I2/I3 do not;
* I2's latching wire buffers switch an order of magnitude more than
  I3's inverter repeaters (the 82 µW vs 9 µW effect);
* the I3 shift-register de-serializer clocks all its registers on every
  slice, unlike I2's one-latch-per-slice design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..sim.clock import Clock
from ..sim.kernel import Simulator
from ..tech.technology import Technology
from ..link.assemblies import LinkConfig, build_link
from ..link.testbench import WORST_CASE_PATTERN, LinkTestbench

#: Fig 14 legend categories
COMPONENT_CATEGORIES = ("Ser/Des", "Buffers", "Asynch Synch Conv.")


def _component(static: float, per_mhz: float, data_per_mhz: float,
               freq_mhz: float, usage: float) -> float:
    """P = static + per_mhz·f + usage·data_per_mhz·f  (µW)."""
    return static + per_mhz * freq_mhz + usage * data_per_mhz * freq_mhz


def power_breakdown(
    tech: Technology,
    kind: str,
    n_buffers: int = 4,
    freq_mhz: float = 100.0,
    usage: float = 0.5,
) -> Dict[str, float]:
    """Per-category power (µW) of one link — the Fig 14 bars."""
    if not (0.0 <= usage <= 1.0):
        raise ValueError(f"usage must be within [0, 1], got {usage}")
    if n_buffers < 1:
        raise ValueError(f"n_buffers must be >= 1, got {n_buffers}")
    p = tech.power
    kind = kind.upper()
    if kind == "I1":
        per_stage = _component(
            p.sync_buf_static, p.sync_buf_per_mhz, p.sync_buf_data_per_mhz,
            freq_mhz, usage,
        )
        return {
            "Ser/Des": 0.0,
            "Buffers": n_buffers * per_stage,
            "Asynch Synch Conv.": 0.0,
        }
    if kind == "I2":
        serdes = _component(p.serdes_i2_static, 0.0, p.serdes_i2_data_per_mhz,
                            freq_mhz, usage)
        per_buf = _component(p.async_buf_i2_static, 0.0,
                             p.async_buf_i2_data_per_mhz, freq_mhz, usage)
    elif kind == "I3":
        serdes = _component(p.serdes_i3_static, 0.0, p.serdes_i3_data_per_mhz,
                            freq_mhz, usage)
        per_buf = _component(p.async_buf_i3_static, 0.0,
                             p.async_buf_i3_data_per_mhz, freq_mhz, usage)
    else:
        raise ValueError(f"unknown link kind {kind!r}")
    conv = _component(p.conv_static, p.conv_per_mhz, p.conv_data_per_mhz,
                      freq_mhz, usage)
    return {
        "Ser/Des": serdes,
        "Buffers": n_buffers * per_buf,
        "Asynch Synch Conv.": conv,
    }


def link_power_uw(
    tech: Technology,
    kind: str,
    n_buffers: int = 4,
    freq_mhz: float = 100.0,
    usage: float = 0.5,
) -> float:
    """Total link power in µW (the Fig 12/13 curves)."""
    return sum(power_breakdown(tech, kind, n_buffers, freq_mhz, usage).values())


def buffer_sweep(
    tech: Technology,
    freq_mhz: float,
    buffer_counts: Sequence[int] = (2, 4, 6, 8),
    usage: float = 0.5,
) -> Dict[str, list[tuple[int, float]]]:
    """Power-vs-buffers curves for all three links (Fig 12 / Fig 13)."""
    curves: Dict[str, list[tuple[int, float]]] = {}
    for kind, label in (("I1", "I1-Synch"), ("I2", "I2-Asynch"),
                        ("I3", "I3-Asynch")):
        curves[label] = [
            (n, link_power_uw(tech, kind, n, freq_mhz, usage))
            for n in buffer_counts
        ]
    return curves


def power_saving_percent(tech: Technology, n_buffers: int = 8,
                         freq_mhz: float = 300.0, usage: float = 0.5) -> float:
    """The headline number: I3 saving over I1 (paper: 65 % at 8/300)."""
    sync = link_power_uw(tech, "I1", n_buffers, freq_mhz, usage)
    asyn = link_power_uw(tech, "I3", n_buffers, freq_mhz, usage)
    return 100.0 * (sync - asyn) / sync


# ----------------------------------------------------------------------
# activity-based (simulation) estimate
# ----------------------------------------------------------------------
@dataclass
class ActivityReport:
    """Switched activity of one simulated link run, grouped by component."""

    kind: str
    n_buffers: int
    freq_mhz: float
    flits: int
    #: cap-weighted transitions per group over the run
    switched_by_group: Dict[str, float]
    #: plain transition counts per group
    transitions_by_group: Dict[str, int]

    def per_flit(self, group: str) -> float:
        """Cap-weighted transitions per delivered flit for ``group``."""
        if self.flits == 0:
            return 0.0
        return self.switched_by_group.get(group, 0.0) / self.flits

    @property
    def total_per_flit(self) -> float:
        if self.flits == 0:
            return 0.0
        return sum(self.switched_by_group.values()) / self.flits


def measure_link_activity(
    kind: str,
    n_buffers: int = 4,
    freq_mhz: float = 100.0,
    n_flits: int = 32,
    tech: Optional[Technology] = None,
    config: Optional[LinkConfig] = None,
    pattern: Sequence[int] = WORST_CASE_PATTERN,
) -> ActivityReport:
    """Run a gate-level link and report per-component switched activity.

    The flit pattern defaults to the paper's worst-case alternating
    0xA5A5A5A5 / 0x5A5A5A5A stream.
    """
    from ..tech.st012 import st012

    tech = tech or st012()
    config = config or LinkConfig(n_buffers=n_buffers)
    sim = Simulator()
    clock = Clock.from_mhz(sim, freq_mhz)
    link = build_link(sim, clock.signal, kind, config, tech)
    link.monitor.snapshot()
    bench = LinkTestbench(sim, clock, link)
    flits = [pattern[i % len(pattern)] for i in range(n_flits)]
    bench.run(flits, timeout_ns=1e7)
    switched = {
        group: link.monitor.switched_energy_fj(
            group, tech.power.energy_per_transition_fj
        )
        for group in link.monitor.groups
    }
    transitions = {
        group: link.monitor.transitions(group) for group in link.monitor.groups
    }
    return ActivityReport(
        kind=link.kind,
        n_buffers=config.n_buffers,
        freq_mhz=freq_mhz,
        flits=n_flits,
        switched_by_group=switched,
        transitions_by_group=transitions,
    )


# ----------------------------------------------------------------------
# tree-walking activity (hierarchy API)
# ----------------------------------------------------------------------
def activity_by_instance(
    root,
    sim,
    energy_per_transition_fj: float = 1.0,
) -> list:
    """Per-instance switched activity, walking the design tree.

    Returns pre-order rows ``(path, depth, class_name, n_nets,
    transitions, switched_fj)`` where the counts cover the nets each
    instance *itself* created (children report their own).  Testbench
    nets owned by no instance are appended under path ``""``.
    """
    from ..design.design import Design

    def tally(nets):
        transitions = sum(sig.rising + sig.falling for sig in nets)
        switched = sum(
            (sig.rising + sig.falling) * sig.cap_ff
            * energy_per_transition_fj
            for sig in nets
        )
        return transitions, switched

    design = Design(root, sim)
    grouped = design.nets_by_instance()
    rows = []
    for path, comp in root.walk():
        nets = grouped.pop(path, [])
        transitions, switched = tally(nets)
        rows.append((
            path, comp.tree_depth, type(comp).__name__,
            len(nets), transitions, switched,
        ))
    leftovers = [sig for nets in grouped.values() for sig in nets]
    if leftovers:
        transitions, switched = tally(leftovers)
        rows.append(
            ("", 0, "-", len(leftovers), transitions, switched)
        )
    return rows


def subtree_activity(rows: list) -> dict:
    """Roll :func:`activity_by_instance` rows up into subtree totals.

    Returns ``{path: (transitions, switched_fj)}`` where every
    instance's total includes all of its descendants.
    """
    totals = {path: [0, 0.0] for path, *_rest in rows}
    for path, _depth, _cls, _nets, transitions, switched in rows:
        candidate = path
        while True:
            if candidate in totals:
                totals[candidate][0] += transitions
                totals[candidate][1] += switched
            cut = candidate.rfind(".")
            if cut < 0:
                break
            candidate = candidate[:cut]
    return {path: (t, s) for path, (t, s) in totals.items()}
