"""Wires-versus-bandwidth model (Fig 10 of the paper).

A synchronous link moving ``width``-bit flits at clock ``f`` needs
``width × B / f`` data wires to sustain a bandwidth of ``B`` flits/s:
at 300 MFlit/s the 32-bit link needs 32 wires at a 300 MHz clock but 96
wires at 100 MHz.  The proposed asynchronous serial link always uses
``slice_width`` data wires regardless of the switch clock, up to its
serial ceiling (~304 MFlit/s for the calibrated constants; the paper
quotes ~311 — see :mod:`repro.analysis.timing`).

The paper's Fig 10 counts *data* wires only (32 for I1, 8 for I3); the
handshake pair adds two more in either scheme and can be included with
``count_control=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..tech.technology import Technology
from .timing import per_word_cycle_delay, scaled_word_timings


@dataclass(frozen=True)
class WireCountPoint:
    """One point of the Fig 10 curves."""

    bandwidth_mflits: float
    wires: Optional[int]  # None = the link cannot reach this bandwidth


def sync_wires_needed(
    bandwidth_mflits: float,
    clock_mhz: float,
    flit_width: int = 32,
    count_control: bool = False,
) -> int:
    """Data wires a synchronous link needs for ``bandwidth_mflits``.

    The data path must be a whole multiple of... nothing, actually: the
    paper's curves are the ideal ``width × B / f`` rounded up to the next
    integer wire.
    """
    if bandwidth_mflits <= 0 or clock_mhz <= 0:
        raise ValueError("bandwidth and clock must be positive")
    wires = math.ceil(flit_width * bandwidth_mflits / clock_mhz)
    return wires + (2 if count_control else 0)


def async_wires_needed(
    bandwidth_mflits: float,
    tech: Technology,
    slice_width: int = 8,
    n_buffers: int = 4,
    flit_width: int = 32,
    count_control: bool = False,
) -> Optional[int]:
    """Wires the proposed serial link needs, or None beyond its ceiling."""
    if bandwidth_mflits <= 0:
        raise ValueError("bandwidth must be positive")
    n_slices = flit_width // slice_width
    timings = scaled_word_timings(tech.handshake, n_slices)
    ceiling = per_word_cycle_delay(timings, n_slices, n_buffers).mflits
    if bandwidth_mflits > ceiling:
        return None
    return slice_width + (2 if count_control else 0)


def fig10_series(
    tech: Technology,
    bandwidths_mflits: Sequence[float] = tuple(range(100, 351, 25)),
    sync_clocks_mhz: Sequence[float] = (100.0, 200.0, 300.0),
    flit_width: int = 32,
    slice_width: int = 8,
    n_buffers: int = 4,
) -> dict[str, list[WireCountPoint]]:
    """All Fig 10 curves: one per synchronous clock plus the async link."""
    series: dict[str, list[WireCountPoint]] = {}
    for clk in sync_clocks_mhz:
        label = f"I1-Synch@{clk:.0f}"
        series[label] = [
            WireCountPoint(b, sync_wires_needed(b, clk, flit_width))
            for b in bandwidths_mflits
        ]
    series["I3-Async (proposed)"] = [
        WireCountPoint(
            b,
            async_wires_needed(b, tech, slice_width, n_buffers, flit_width),
        )
        for b in bandwidths_mflits
    ]
    return series


# ----------------------------------------------------------------------
# tree-walking wire inventory (hierarchy API)
# ----------------------------------------------------------------------
def link_wire_count_from_tree(link) -> int:
    """Physical switch-to-switch wires, read off the instance tree.

    The serial links carry ``slice_width`` data wires plus the
    request/valid + acknowledge pair; the synchronous pipeline carries
    the full flit width.  Counted from the built structure (the
    serializer's narrow output channel) rather than from the config —
    pins against ``LinkInstance.wire_count``.
    """
    from ..link.serializer import Serializer
    from ..link.sync_link import SyncPipelineLink
    from ..link.word_level import WordSerializer

    for _path, comp in link.walk():
        if isinstance(comp, (Serializer, WordSerializer)):
            return comp.out_ch.width + 2
        if isinstance(comp, SyncPipelineLink):
            return comp.width
    raise ValueError(
        f"no serializer or pipeline found under {link.name!r}: "
        "not a built link tree"
    )


def wire_count_by_instance(root, sim) -> dict:
    """Number of created nets per owning instance path (wire inventory)."""
    from ..design.design import Design

    return {
        path: len(nets)
        for path, nets in Design(root, sim).nets_by_instance().items()
    }
