"""Plain-text table/series rendering for benches and examples.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place (fixed-width ASCII
tables and simple aligned series dumps — nothing graphical, the repo is
headless).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[object, object]]],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
) -> str:
    """Aligned multi-series dump: one block per curve."""
    lines = []
    if title:
        lines.append(title)
    for label, points in series.items():
        lines.append(f"[{label}]")
        for x, y in points:
            lines.append(f"  {x_label}={_fmt(x):>10}  {y_label}={_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


# ----------------------------------------------------------------------
# per-instance breakdowns (hierarchy API)
# ----------------------------------------------------------------------
def format_instance_breakdown(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str],
    title: Optional[str] = None,
    indent_by_depth: bool = True,
) -> str:
    """Fixed-width per-instance table with tree indentation.

    ``rows`` lead with ``(path, depth, ...)``; the path column is
    indented two spaces per tree level so the table reads as the
    instance hierarchy, and the depth column itself is dropped.
    """
    rendered = []
    for row in rows:
        path, depth, *rest = row
        label = str(path) if path else "(testbench)"
        if indent_by_depth:
            label = "  " * int(depth) + (label.rsplit(".", 1)[-1]
                                         if path else label)
        rendered.append([label, *rest])
    return format_table(headers, rendered, title=title)


def design_summary_rows(design) -> list:
    """(path, depth, class, children, ports, nets) rows for a design.

    Works on described *and* elaborated designs (net counts are only
    available after elaboration); duck-typed on
    :class:`repro.design.Design`.
    """
    nets = design.nets_by_instance() if design.is_elaborated else {}
    rows = []
    for path, comp in design.top.walk():
        ports = ", ".join(
            f"{p.name}:{p.direction}" for p in comp.ports.values()
        )
        rows.append([
            path,
            comp.tree_depth,
            type(comp).__name__,
            len(comp.children),
            ports or "-",
            len(nets.get(path, ())) if nets else "-",
        ])
    return rows


def render_design_summary(design, title: Optional[str] = None) -> str:
    """The ``repro inspect`` table: one row per instance."""
    return format_instance_breakdown(
        design_summary_rows(design),
        ("instance", "class", "children", "ports", "nets"),
        title=title,
    )


def relative_error(measured: float, reference: float) -> float:
    """Signed relative error (measured - reference) / reference."""
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return (measured - reference) / reference


def within(measured: float, reference: float, tolerance: float) -> bool:
    """True if ``measured`` is within ``tolerance`` (fraction) of reference."""
    return abs(relative_error(measured, reference)) <= tolerance
