"""Discrete-event simulation kernel.

The kernel is a classic event-wheel simulator: callbacks are scheduled at
integer *picosecond* timestamps and executed in time order.  Integer time
avoids the float-comparison nondeterminism that plagues gate-level
simulation (two gates with delay ``0.1 + 0.2`` vs ``0.3`` ns must fire in
a well-defined order).

Events scheduled for the same timestamp execute in scheduling order
(FIFO), which gives the simulator deterministic delta-cycle semantics:
a zero-delay chain of gate evaluations settles within one timestamp in
the order the updates were produced.

Time unit helpers (`NS`, `PS`, `US`, `MHZ_PERIOD_PS`) are provided so that
user code can speak nanoseconds while the kernel stays integral.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

#: picoseconds per nanosecond — the kernel's base unit is 1 ps.
PS = 1
NS = 1000
US = 1_000_000
MS = 1_000_000_000


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds.

    Rounds to the nearest picosecond; raises if the duration is negative.
    """
    if value < 0:
        raise ValueError(f"durations must be non-negative, got {value} ns")
    return round(value * NS)


def to_ns(ps_value: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return ps_value / NS


def mhz_period_ps(freq_mhz: float) -> int:
    """Clock period in picoseconds for a frequency given in MHz.

    >>> mhz_period_ps(100)
    10000
    >>> mhz_period_ps(300)
    3333
    """
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz} MHz")
    return round(1e6 / freq_mhz)


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (scheduling in the past, etc.)."""


class Simulator:
    """Event-driven simulator with integer-picosecond resolution.

    A simulator owns a priority queue of ``(time, sequence, callback)``
    entries.  ``run`` pops and executes them in order until the queue is
    empty, an optional time horizon is reached, or an event budget is
    exhausted.

    Components built on the kernel (signals, gates, processes) hold a
    reference to the simulator and use :meth:`schedule` / :meth:`call_at`.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now / NS

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (for budget checks)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` picoseconds from now.

        Returns a sequence token identifying the event (used by
        :class:`repro.sim.signal.Signal` for inertial cancellation).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ps into the past at t={self._now}"
            )
        return self.call_at(self._now + delay, callback)

    def call_at(self, when: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``when`` (picoseconds)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} ps, current time is {self._now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, callback))
        return self._seq

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Absolute stop time in picoseconds.  Events scheduled at
            exactly ``until`` are *not* executed; time is left at
            ``until`` so a subsequent ``run`` continues seamlessly.
        max_events:
            Safety budget; raises :class:`SimulationError` when exceeded
            (a handshake livelock otherwise spins forever).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                when, _seq, callback = self._queue[0]
                if until is not None and when >= until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = when
                callback()
                executed += 1
                self._events_executed += 1
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at "
                        f"t={self._now} ps — possible livelock"
                    )
            else:
                # queue drained; advance to the horizon if one was given
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return executed

    def run_ns(self, until_ns: float, max_events: Optional[int] = None) -> int:
        """Like :meth:`run` with the horizon given in nanoseconds."""
        return self.run(until=ns(until_ns), max_events=max_events)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty.

        A step is a one-event :meth:`run`: it honours the same
        reentrancy guard (a callback may not call ``step``/``run`` on
        its own simulator) and resets the :meth:`stop` flag on entry.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if not self._queue:
            return False
        self._running = True
        self._stopped = False
        try:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            self._events_executed += 1
        finally:
            self._running = False
        return True

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)
