"""Discrete-event simulation kernel.

The kernel schedules callbacks at integer *picosecond* timestamps and
executes them in time order.  Integer time avoids the float-comparison
nondeterminism that plagues gate-level simulation (two gates with delay
``0.1 + 0.2`` vs ``0.3`` ns must fire in a well-defined order).

Events scheduled for the same timestamp execute in scheduling order
(FIFO), which gives the simulator deterministic delta-cycle semantics:
a zero-delay chain of gate evaluations settles within one timestamp in
the order the updates were produced.

Scheduler design (the seed's flat ``heapq`` of ``(time, seq, callback)``
tuples lives on verbatim in :mod:`repro.sim.reference`):

* **near band** — a calendar of per-timestamp buckets (``dict`` keyed by
  absolute time, each bucket a FIFO list of event cells) plus a small
  heap of the *distinct* occupied timestamps.  Gate-level workloads
  cluster heavily on shared timestamps (delta cycles, equal gate
  delays), so most events cost one dict probe and a list append instead
  of an O(log n) heap push, and a whole delta storm drains with zero
  heap traffic.
* **far band** — events at or beyond the current horizon go to an
  overflow ``heapq``; when the near band drains, the horizon advances
  and due far events migrate into fresh buckets.  Because the horizon
  only grows and far events always lie at/beyond it, FIFO order across
  the boundary is preserved.
* **true cancellation** — :meth:`Simulator.schedule` returns the event's
  mutable cell; :meth:`Simulator.cancel` nulls it in place, so a
  superseded inertial drive never executes, never counts against the
  ``max_events`` livelock budget, and never shows up in
  :attr:`Simulator.pending_events` (which reports *live* events only).

Time unit helpers (`NS`, `PS`, `US`, `MHZ_PERIOD_PS`) are provided so that
user code can speak nanoseconds while the kernel stays integral.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional

from ..obs.metrics import REGISTRY as _OBS

#: picoseconds per nanosecond — the kernel's base unit is 1 ps.
PS = 1
NS = 1000
US = 1_000_000
MS = 1_000_000_000


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds.

    Rounds to the nearest picosecond; raises if the duration is negative.
    """
    if value < 0:
        raise ValueError(f"durations must be non-negative, got {value} ns")
    return round(value * NS)


def to_ns(ps_value: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return ps_value / NS


def mhz_period_ps(freq_mhz: float) -> int:
    """Clock period in picoseconds for a frequency given in MHz.

    >>> mhz_period_ps(100)
    10000
    >>> mhz_period_ps(300)
    3333
    """
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz} MHz")
    return round(1e6 / freq_mhz)


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (scheduling in the past, etc.)."""


#: an event: a one-slot mutable cell holding the callback, or ``None``
#: once executed or cancelled.  The cell doubles as the cancellation
#: handle returned by :meth:`Simulator.schedule`.
EventHandle = List[Optional[Callable[[], None]]]


class Simulator:
    """Event-driven simulator with integer-picosecond resolution.

    ``run`` pops and executes events in (time, scheduling-order) order
    until the queue is empty, an optional time horizon is reached, or an
    event budget is exhausted.  Only *live* events execute or count:
    cancelled cells are skipped for free.

    Components built on the kernel (signals, gates, processes) hold a
    reference to the simulator and use :meth:`schedule` / :meth:`call_at`.
    The factory methods (:meth:`signal`, :meth:`bus`, :meth:`bus_view`,
    :meth:`spawn`) are the construction seam the circuit library builds
    through, which is what lets the same circuits run on the frozen
    seed kernel in :mod:`repro.sim.reference`.
    """

    #: width of the near band, ps.  Delta cycles, gate delays and clock
    #: periods (3.3–10 ns) all land far inside it; only long testbench
    #: timeouts and horizon markers overflow to the far heap.
    NEAR_WINDOW = 1 << 16

    __slots__ = (
        "_near",
        "_times",
        "_far",
        "_horizon",
        "_now",
        "_seq",
        "_live",
        "_cancelled",
        "_events_executed",
        "_migrations",
        "_running",
        "_stopped",
        "created_signals",
    )

    def __init__(self) -> None:
        #: near band: absolute time → bucket.  A lone event's cell *is*
        #: the bucket (len 1, the sparse-workload fast path); once a
        #: second event lands on the timestamp the bucket becomes
        #: ``[cursor, cell, cell, ...]`` where ``cursor`` indexes the
        #: next unconsumed cell (an O(1) resume point for ``step`` /
        #: ``stop`` / exceptions).
        self._near: dict[int, list] = {}
        self._times: list[int] = []  # heap of distinct near timestamps
        self._far: list[tuple[int, int, EventHandle]] = []
        self._horizon: int = self.NEAR_WINDOW
        self._now: int = 0
        self._seq: int = 0
        self._live: int = 0
        self._cancelled: int = 0
        self._events_executed: int = 0
        self._migrations: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: every net built through the factory methods, in creation order
        #: (walked by the kernel-equivalence tests and the gate bench)
        self.created_signals: list = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now / NS

    @property
    def events_executed(self) -> int:
        """Total number of *live* events executed so far."""
        return self._events_executed

    @property
    def events_cancelled(self) -> int:
        """Total number of events cancelled before execution."""
        return self._cancelled

    @property
    def band_migrations(self) -> int:
        """Total events migrated far→near by horizon advances."""
        return self._migrations

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int,
                 callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` picoseconds from now.

        Returns the event's handle, accepted by :meth:`cancel` (used by
        :class:`repro.sim.signal.Signal` for inertial cancellation).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ps into the past at t={self._now}"
            )
        when = self._now + delay
        cell: EventHandle = [callback]
        if when < self._horizon:
            bucket = self._near.get(when)
            if bucket is None:
                # a lone event's cell doubles as its bucket (len 1);
                # multi-buckets are [cursor, cell, cell, ...] (len >= 2)
                self._near[when] = cell
                heappush(self._times, when)
            elif len(bucket) == 1:
                self._near[when] = [1, bucket, cell]
            else:
                bucket.append(cell)
        else:
            self._seq += 1
            heappush(self._far, (when, self._seq, cell))
        self._live += 1
        return cell

    def call_at(self, when: int,
                callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when`` (picoseconds)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} ps, current time is {self._now}"
            )
        return self.schedule(when - self._now, callback)

    def cancel(self, handle: Optional[EventHandle]) -> bool:
        """Cancel a scheduled event; it will never execute nor count.

        Returns True if the event was still pending, False if it already
        executed, was already cancelled, or ``handle`` is None.
        """
        if handle is None or handle[0] is None:
            return False
        handle[0] = None
        self._live -= 1
        self._cancelled += 1
        return True

    # ------------------------------------------------------------------
    # internal: far→near migration
    # ------------------------------------------------------------------
    def _refill_near(self) -> None:
        """Advance the horizon past the earliest far event and migrate.

        Called only with an empty near band.  Far events always lie
        at/beyond the current horizon and the horizon only grows, so a
        migrated batch lands in fresh buckets in (time, seq) order —
        global FIFO order is preserved across the band boundary.
        """
        far = self._far
        horizon = far[0][0] + self.NEAR_WINDOW
        near = self._near
        times = self._times
        migrated = 0
        while far and far[0][0] < horizon:
            when, _seq, cell = heappop(far)
            bucket = near.get(when)
            if bucket is None:
                near[when] = cell
                heappush(times, when)
            elif len(bucket) == 1:
                near[when] = [1, bucket, cell]
            else:
                bucket.append(cell)
            migrated += 1
        self._migrations += migrated
        self._horizon = horizon

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Absolute stop time in picoseconds.  Events scheduled at
            exactly ``until`` are *not* executed; time is left at
            ``until`` so a subsequent ``run`` continues seamlessly.
        max_events:
            Safety budget; raises :class:`SimulationError` when exceeded
            (a handshake livelock otherwise spins forever).  Cancelled
            events do not count — only work actually executed can trip
            the budget.

        Returns the number of (live) events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        # observability: one flag check when disabled; when enabled,
        # remember the plain-int counters so the finally block can hand
        # the registry this call's deltas in bulk (never per event)
        obs_base = None
        if _OBS.enabled:
            obs_base = (self._cancelled, self._migrations, self._live)
            occupancy = _OBS.histogram(
                "sim.bucket_occupancy", (1, 2, 4, 8, 16, 32)
            )
            for bucket in self._near.values():
                occupancy.observe(
                    1 if len(bucket) == 1 else len(bucket) - 1
                )
        # -1 never equals an incrementing counter: one comparison per
        # event instead of a None check plus a comparison.  A caller's
        # non-positive budget trips on the first event (seed checked
        # ``executed >= max_events`` after incrementing), so it must
        # not collide with the unlimited sentinel.
        if max_events is None:
            budget = -1
        elif max_events < 1:
            budget = 1
        else:
            budget = max_events
        near = self._near
        times = self._times
        far = self._far
        try:
            while True:
                if not times:
                    if not far:
                        if until is not None and until > self._now:
                            self._now = until
                        break
                    if until is not None and far[0][0] >= until:
                        self._now = until
                        break
                    self._refill_near()
                    continue
                when = times[0]
                if until is not None and when >= until:
                    self._now = until
                    break
                bucket = near[when]
                self._now = when
                if len(bucket) == 1:
                    # singleton fast path: the cell is the bucket
                    heappop(times)
                    del near[when]
                    fn = bucket[0]
                    if fn is None:  # cancelled: skip for free
                        continue
                    bucket[0] = None
                    self._live -= 1
                    fn()
                    executed += 1
                    self._events_executed += 1
                    if self._stopped:
                        break
                    if executed == budget:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self._now} ps — possible livelock"
                        )
                    continue
                i = bucket[0]
                while i < len(bucket):
                    cell = bucket[i]
                    i += 1
                    fn = cell[0]
                    if fn is None:  # cancelled: skip for free
                        continue
                    cell[0] = None
                    bucket[0] = i
                    self._live -= 1
                    fn()
                    executed += 1
                    self._events_executed += 1
                    if self._stopped:
                        break
                    if executed == budget:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self._now} ps — possible livelock"
                        )
                bucket[0] = i
                if i >= len(bucket):
                    heappop(times)
                    del near[when]
                if self._stopped:
                    break
        finally:
            self._running = False
            if obs_base is not None and _OBS.enabled:
                cancelled0, migrations0, live0 = obs_base
                cancelled_d = self._cancelled - cancelled0
                _OBS.counter("sim.events_executed").inc(executed)
                _OBS.counter("sim.events_cancelled").inc(cancelled_d)
                # everything scheduled while running either executed,
                # was cancelled, or is still live — no hot counter needed
                _OBS.counter("sim.events_scheduled").inc(
                    executed + cancelled_d + (self._live - live0)
                )
                _OBS.counter("sim.band_migrations").inc(
                    self._migrations - migrations0
                )
                _OBS.gauge("sim.near_buckets").set(len(self._near))
                _OBS.gauge("sim.far_events").set(len(self._far))
                _OBS.gauge("sim.pending_events").set(self._live)
        return executed

    def run_ns(self, until_ns: float, max_events: Optional[int] = None) -> int:
        """Like :meth:`run` with the horizon given in nanoseconds."""
        return self.run(until=ns(until_ns), max_events=max_events)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute exactly one live event.  False if none are queued.

        A step is a one-event :meth:`run`: it honours the same
        reentrancy guard (a callback may not call ``step``/``run`` on
        its own simulator) and resets the :meth:`stop` flag on entry.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        near = self._near
        times = self._times
        far = self._far
        while True:
            if not times:
                if not far:
                    return False
                self._refill_near()
                continue
            when = times[0]
            bucket = near[when]
            if len(bucket) == 1:
                heappop(times)
                del near[when]
                if bucket[0] is None:
                    # time advances through discarded cancelled events,
                    # exactly as run() advances through dead buckets
                    self._now = when
                    continue
                cell = bucket
            else:
                i = bucket[0]
                cell = None
                while i < len(bucket):
                    candidate = bucket[i]
                    i += 1
                    if candidate[0] is not None:
                        cell = candidate
                        break
                bucket[0] = i
                if cell is None:
                    heappop(times)
                    del near[when]
                    self._now = when
                    continue
            self._running = True
            self._stopped = False
            try:
                self._now = when
                fn = cell[0]
                cell[0] = None
                self._live -= 1
                fn()
                self._events_executed += 1
            finally:
                self._running = False
            return True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return self._live

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)

    # ------------------------------------------------------------------
    # construction factories
    # ------------------------------------------------------------------
    # The circuit library (repro.elements / repro.link) creates all of
    # its internal nets and processes through these, so the same circuit
    # code builds cleanly on either this kernel or the frozen seed one
    # (repro.sim.reference implements the same four methods).
    def signal(self, name: str = "sig", init: int = 0, cap_ff: float = 1.0):
        """Create a :class:`~repro.sim.signal.Signal` on this simulator."""
        from .signal import Signal

        sig = Signal(self, name, init, cap_ff)
        self.created_signals.append(sig)
        return sig

    def bus(self, width: int, name: str = "bus", init: int = 0,
            cap_ff: float = 1.0):
        """Create a :class:`~repro.sim.signal.Bus` on this simulator."""
        from .signal import Bus

        made = Bus(self, width, name, init, cap_ff)
        self.created_signals.extend(made.signals)
        return made

    def bus_view(self, signals, name: str = "view"):
        """A bus view over existing signals (no new nets created)."""
        from .signal import Bus

        return Bus.from_signals(self, signals, name)

    def spawn(self, gen, name: str = "proc"):
        """Start a generator as a process; it first runs at current time."""
        from .process import Process

        proc = Process(self, gen, name)
        self.schedule(0, proc._resume_cb)
        return proc
