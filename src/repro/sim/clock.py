"""Clock generation for the synchronous parts of the system.

The paper's switches and the synchronous halves of the domain-crossing
interfaces run from a single slow global clock (CLK A); the whole point
of the proposed link is that *no second, faster clock* is needed.  The
:class:`Clock` here therefore drives exactly one signal, and the power
model charges every clocked storage element to it.
"""

from __future__ import annotations

from typing import Optional

from .kernel import Simulator, mhz_period_ps
from .signal import Signal


class Clock:
    """A free-running 50 %-duty-cycle clock driving a :class:`Signal`.

    The clock keeps scheduling its own half-period toggles; stop it with
    :meth:`stop` (or just stop running the simulator).
    """

    def __init__(
        self,
        sim: Simulator,
        period_ps: int,
        name: str = "clk",
        start_delay_ps: int = 0,
    ) -> None:
        if period_ps < 2:
            raise ValueError(f"clock period must be >= 2 ps, got {period_ps}")
        self.sim = sim
        self.period_ps = period_ps
        self.half_period = period_ps // 2
        # built through the factory so the clock net follows the kernel
        # the simulator belongs to (optimized or frozen reference)
        self.signal: Signal = sim.signal(name, init=0)
        self.cycles: int = 0
        self._running = True
        # one bound method reused by every toggle (a clock schedules an
        # event per half-period for the whole simulation)
        self._tick_cb = self._tick
        sim.schedule(start_delay_ps, self._tick_cb)

    @classmethod
    def from_mhz(
        cls,
        sim: Simulator,
        freq_mhz: float,
        name: str = "clk",
        start_delay_ps: int = 0,
    ) -> "Clock":
        """Build a clock from a frequency in MHz (e.g. the paper's 100/300)."""
        return cls(sim, mhz_period_ps(freq_mhz), name, start_delay_ps)

    @property
    def freq_mhz(self) -> float:
        """Clock frequency in MHz."""
        return 1e6 / self.period_ps

    def _tick(self) -> None:
        if not self._running:
            return
        signal = self.signal
        if signal.value == 0:
            signal.set(1)
            self.cycles += 1
            self.sim.schedule(self.half_period, self._tick_cb)
        else:
            signal.set(0)
            self.sim.schedule(self.period_ps - self.half_period, self._tick_cb)

    def stop(self) -> None:
        """Freeze the clock at its current level."""
        self._running = False


def run_cycles(sim: Simulator, clock: Clock, cycles: int,
               max_events: Optional[int] = None) -> None:
    """Run the simulator for ``cycles`` full periods of ``clock``."""
    sim.run(until=sim.now + cycles * clock.period_ps, max_events=max_events)
