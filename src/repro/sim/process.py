"""Generator-based processes on top of the event kernel.

Testbenches and synchronous blocks (the clocked halves of the paper's
synch/asynch interfaces, the NoC switches, flit sources and sinks) are
most naturally written as sequential code.  A :class:`Process` wraps a
generator that yields *wait conditions*:

``yield Delay(250)``
    resume 250 ps later.

``yield Edge(sig)`` / ``yield RisingEdge(sig)`` / ``yield FallingEdge(sig)``
    resume on the next (matching) transition of ``sig``.

``yield WaitValue(sig, 1)``
    resume immediately if ``sig`` already has the value, otherwise on the
    transition that produces it — the idiom for four-phase handshakes
    ("wait until ack is high").

Processes are started with :func:`spawn` and run until their generator
returns.  Exceptions raised inside a process propagate out of
``Simulator.run`` so test failures are loud, never silently swallowed.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from .kernel import Simulator
from .signal import Signal


class Delay:
    """Wait condition: resume after ``duration`` picoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"delay must be non-negative, got {duration}")
        self.duration = duration


class Edge:
    """Wait condition: resume on a transition of ``signal``.

    ``kind`` selects 'any', 'rise' or 'fall'.
    """

    __slots__ = ("signal", "kind")

    def __init__(self, signal: Signal, kind: str = "any") -> None:
        if kind not in ("any", "rise", "fall"):
            raise ValueError(f"unknown edge kind {kind!r}")
        self.signal = signal
        self.kind = kind


def RisingEdge(signal: Signal) -> Edge:
    """Wait for a 0→1 transition of ``signal``."""
    return Edge(signal, "rise")


def FallingEdge(signal: Signal) -> Edge:
    """Wait for a 1→0 transition of ``signal``."""
    return Edge(signal, "fall")


class WaitValue:
    """Wait condition: resume when ``signal`` has ``value``.

    Resumes immediately (same timestamp, next delta) if the signal already
    carries the value — this makes handshake loops race-free.
    """

    __slots__ = ("signal", "value")

    def __init__(self, signal: Signal, value: int) -> None:
        self.signal = signal
        self.value = 1 if value else 0


Condition = Union[Delay, Edge, WaitValue]
ProcessGen = Generator[Condition, None, None]


class Process:
    """A running coroutine on the simulator."""

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self._waiting_on: Optional[Signal] = None
        self._listener = None

    # ------------------------------------------------------------------
    def _resume(self) -> None:
        if self.finished:
            return
        try:
            condition = next(self.gen)
        except StopIteration:
            self.finished = True
            return
        self._arm(condition)

    def _arm(self, condition: Condition) -> None:
        if isinstance(condition, Delay):
            self.sim.schedule(condition.duration, self._resume)
        elif isinstance(condition, Edge):
            self._wait_edge(condition.signal, condition.kind)
        elif isinstance(condition, WaitValue):
            if condition.signal.value == condition.value:
                # resume in a fresh delta so ordering stays deterministic
                self.sim.schedule(0, self._resume)
            else:
                kind = "rise" if condition.value else "fall"
                self._wait_edge(condition.signal, kind)
        else:  # pragma: no cover - defensive
            raise TypeError(
                f"process {self.name!r} yielded {condition!r}; expected "
                "Delay, Edge or WaitValue"
            )

    def _wait_edge(self, signal: Signal, kind: str) -> None:
        def listener(sig: Signal) -> None:
            if kind == "rise" and sig.value != 1:
                return
            if kind == "fall" and sig.value != 0:
                return
            sig.remove_listener(listener)
            self._resume()

        signal.on_change(listener)

    def kill(self) -> None:
        """Stop the process; it will never resume."""
        self.finished = True
        self.gen.close()


def spawn(sim: Simulator, gen: ProcessGen, name: str = "proc") -> Process:
    """Start ``gen`` as a process; it first runs at the current time."""
    proc = Process(sim, gen, name)
    sim.schedule(0, proc._resume)
    return proc
