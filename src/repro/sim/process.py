"""Generator-based processes on top of the event kernel.

Testbenches and synchronous blocks (the clocked halves of the paper's
synch/asynch interfaces, the NoC switches, flit sources and sinks) are
most naturally written as sequential code.  A :class:`Process` wraps a
generator that yields *wait conditions*:

``yield Delay(250)``
    resume 250 ps later.

``yield Edge(sig)`` / ``yield RisingEdge(sig)`` / ``yield FallingEdge(sig)``
    resume on the next (matching) transition of ``sig``.

``yield WaitValue(sig, 1)``
    resume immediately if ``sig`` already has the value, otherwise on the
    transition that produces it — the idiom for four-phase handshakes
    ("wait until ack is high").

Processes are started with :func:`spawn` and run until their generator
returns.  Exceptions raised inside a process propagate out of
``Simulator.run`` so test failures are loud, never silently swallowed.

Hot-path notes: a process resumes thousands of times per simulated
word, so the resume and edge-wait callbacks are bound methods created
once at construction — no closure is allocated per wait, and the edge
filter runs off a plain attribute instead of a captured variable.  The
wait-condition classes themselves are pure data and are shared with the
frozen seed kernel (:mod:`repro.sim.reference`).
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from .kernel import Simulator
from .signal import Signal


class Delay:
    """Wait condition: resume after ``duration`` picoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"delay must be non-negative, got {duration}")
        self.duration = duration


class Edge:
    """Wait condition: resume on a transition of ``signal``.

    ``kind`` selects 'any', 'rise' or 'fall'.
    """

    __slots__ = ("signal", "kind")

    def __init__(self, signal: Signal, kind: str = "any") -> None:
        if kind not in ("any", "rise", "fall"):
            raise ValueError(f"unknown edge kind {kind!r}")
        self.signal = signal
        self.kind = kind


def RisingEdge(signal: Signal) -> Edge:
    """Wait for a 0→1 transition of ``signal``."""
    return Edge(signal, "rise")


def FallingEdge(signal: Signal) -> Edge:
    """Wait for a 1→0 transition of ``signal``."""
    return Edge(signal, "fall")


class WaitValue:
    """Wait condition: resume when ``signal`` has ``value``.

    Resumes immediately (same timestamp, next delta) if the signal already
    carries the value — this makes handshake loops race-free.
    """

    __slots__ = ("signal", "value")

    def __init__(self, signal: Signal, value: int) -> None:
        self.signal = signal
        self.value = 1 if value else 0


Condition = Union[Delay, Edge, WaitValue]
ProcessGen = Generator[Condition, None, None]


class Process:
    """A running coroutine on the simulator."""

    __slots__ = (
        "sim",
        "gen",
        "name",
        "finished",
        "_edge_kind",
        "_resume_cb",
        "_edge_cb",
    )

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self._edge_kind: Optional[str] = None
        # created once: every Delay/Edge wait reuses these bound methods
        self._resume_cb = self._resume
        self._edge_cb = self._on_edge

    # ------------------------------------------------------------------
    def _resume(self) -> None:
        if self.finished:
            return
        try:
            condition = next(self.gen)
        except StopIteration:
            self.finished = True
            return
        self._arm(condition)

    def _arm(self, condition: Condition) -> None:
        if isinstance(condition, Delay):
            self.sim.schedule(condition.duration, self._resume_cb)
        elif isinstance(condition, WaitValue):
            if condition.signal._value == condition.value:
                # resume in a fresh delta so ordering stays deterministic
                self.sim.schedule(0, self._resume_cb)
            else:
                self._edge_kind = "rise" if condition.value else "fall"
                condition.signal.on_change(self._edge_cb)
        elif isinstance(condition, Edge):
            self._edge_kind = condition.kind
            condition.signal.on_change(self._edge_cb)
        else:  # pragma: no cover - defensive
            raise TypeError(
                f"process {self.name!r} yielded {condition!r}; expected "
                "Delay, Edge or WaitValue"
            )

    def _on_edge(self, sig: Signal) -> None:
        kind = self._edge_kind
        if kind == "rise":
            if sig._value != 1:
                return
        elif kind == "fall":
            if sig._value != 0:
                return
        sig.remove_listener(self._edge_cb)
        self._resume()

    def kill(self) -> None:
        """Stop the process; it will never resume."""
        self.finished = True
        self.gen.close()


def spawn(sim: Simulator, gen: ProcessGen, name: str = "proc") -> Process:
    """Start ``gen`` as a process; it first runs at the current time.

    Dispatches through ``sim.spawn`` so circuits built on the frozen
    seed kernel (:mod:`repro.sim.reference`) get the frozen process
    implementation instead.
    """
    return sim.spawn(gen, name)
