"""Waveform tracing and activity accounting.

Two consumers need visibility into simulated nets:

* debugging — :class:`Tracer` records (time, value) pairs per signal and
  renders a compact ASCII waveform, enough to eyeball a handshake;
* the power model — :class:`ActivityMonitor` snapshots transition counts
  over a measurement window and reports per-group switched energy.

Signals are grouped by the module that created them (each link module
registers its nets under its own group name), which is what lets the
Fig 14 power-breakdown experiment split consumption by component.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .signal import Signal


class Tracer:
    """Records value changes on selected signals for later inspection."""

    def __init__(self) -> None:
        self.signals: list[Signal] = []

    def watch(self, *items: object) -> None:
        """Start tracing the given :class:`Signal`/:class:`Bus` objects.

        Duck-typed on the bus/signal shape (a bus carries ``signals``, a
        signal carries ``enable_trace``) so nets from the frozen seed
        kernel (:mod:`repro.sim.reference`) trace identically.
        """
        for item in items:
            bits = getattr(item, "signals", None)
            if bits is not None:
                for sig in bits:
                    sig.enable_trace()
                    self.signals.append(sig)
            elif hasattr(item, "enable_trace"):
                item.enable_trace()
                self.signals.append(item)
            else:
                raise TypeError(f"cannot trace {item!r}")

    def history(self, signal: Signal) -> List[tuple[int, int]]:
        """The (time_ps, value) change list of a watched signal."""
        if signal.trace is None:
            raise ValueError(f"{signal.name} is not being traced")
        return list(signal.trace)

    def render(self, until_ps: int, step_ps: int = 100) -> str:
        """ASCII waveform of all watched signals up to ``until_ps``."""
        lines = []
        width = max((len(s.name) for s in self.signals), default=4)
        for sig in self.signals:
            samples = _sample(sig.trace or [], until_ps, step_ps)
            wave = "".join("▔" if v else "▁" for v in samples)
            lines.append(f"{sig.name:>{width}} {wave}")
        return "\n".join(lines)


def _sample(trace: Sequence[tuple[int, int]], until: int, step: int) -> List[int]:
    samples = []
    value = trace[0][1] if trace else 0
    idx = 0
    for t in range(0, until, step):
        while idx < len(trace) and trace[idx][0] <= t:
            value = trace[idx][1]
            idx += 1
        samples.append(value)
    return samples


class ActivityMonitor:
    """Transition/energy accounting over named groups of signals.

    Groups mirror the paper's Fig 14 component split: a link assembly
    registers its nets under e.g. ``"sync_to_async"``, ``"serializer"``,
    ``"buffers"``, ``"deserializer"``, ``"async_to_sync"``.

    :meth:`add_tree` instead keys groups by *instance path*: every net
    of an elaborated design lands in the group of the component that
    created it, so per-instance power breakdowns fall out of the same
    accounting machinery.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, list[Signal]] = {}
        self._baseline: Dict[int, int] = {}

    def add(self, group: str, *items: object) -> None:
        """Register signals/buses under ``group`` (duck-typed like
        :meth:`Tracer.watch`, so reference-kernel nets monitor too)."""
        bucket = self._groups.setdefault(group, [])
        for item in items:
            bits = getattr(item, "signals", None)
            if bits is not None:
                bucket.extend(bits)
            elif hasattr(item, "enable_trace"):
                bucket.append(item)
            elif isinstance(item, Iterable):
                for sub in item:
                    self.add(group, sub)
            else:
                raise TypeError(f"cannot monitor {item!r}")

    def add_tree(self, root, sim, default_group: str = "") -> List[str]:
        """Register every created net under its owning instance path.

        ``root`` is a :class:`repro.design.Component` tree and ``sim``
        the simulator its nets were created on; nets whose names match
        no instance go to ``default_group``.  Returns the group names
        added (instance paths, pre-order).
        """
        from ..design.design import Design

        grouped = Design(root, sim).nets_by_instance()
        added = []
        for path, nets in grouped.items():
            group = path or default_group
            self.add(group, *nets)
            added.append(group)
        return added

    @property
    def groups(self) -> List[str]:
        return list(self._groups)

    def signals_in(self, group: str) -> List[Signal]:
        return list(self._groups.get(group, []))

    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Mark the start of a measurement window."""
        self._baseline = {
            id(sig): sig.transitions
            for bucket in self._groups.values()
            for sig in bucket
        }

    def transitions(self, group: Optional[str] = None) -> int:
        """Transitions since :meth:`snapshot` (all groups if None)."""
        total = 0
        buckets = (
            [self._groups[group]] if group is not None else self._groups.values()
        )
        for bucket in buckets:
            for sig in bucket:
                total += sig.transitions - self._baseline.get(id(sig), 0)
        return total

    def switched_energy_fj(self, group: Optional[str] = None,
                           energy_per_transition_fj: float = 1.0) -> float:
        """Capacitance-weighted switched energy since the snapshot.

        Each signal contributes ``transitions * cap_ff *
        energy_per_transition_fj`` — the per-transition scale comes from
        the technology model, ``cap_ff`` from the net's relative weight.
        """
        total = 0.0
        buckets = (
            [self._groups[group]] if group is not None else self._groups.values()
        )
        for bucket in buckets:
            for sig in bucket:
                delta = sig.transitions - self._baseline.get(id(sig), 0)
                total += delta * sig.cap_ff * energy_per_transition_fj
        return total
