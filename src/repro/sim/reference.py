"""Frozen seed-semantics event kernel (differential-testing oracle).

The optimized kernel in :mod:`repro.sim.kernel` / :mod:`repro.sim.signal`
/ :mod:`repro.sim.process` / :mod:`repro.sim.clock` replaces the seed's
flat ``heapq`` event wheel with a two-level calendar scheduler, adds true
cancellation for inertial drives, and strips the per-event allocations
out of ``Signal.set`` / ``Signal.drive`` / ``Bus``.  This module
preserves the original kernel — one ``(time, seq, callback)`` tuple per
event, superseded inertial drives executing as token-checked no-ops,
listener snapshots allocated per transition — exactly as the seed
implemented it.

It exists for two reasons:

* **equivalence gating** — ``tests/test_sim_kernel_equivalence.py``
  builds the same gate/latch/four-phase/serializer testbenches on both
  kernels and asserts bit-identical signal traces, transition counters,
  process wakeup orders and VCD output.  Any divergence is a kernel bug.
* **speedup measurement** — ``python -m repro bench --suite gate`` times
  both kernels on the same workloads and reports events/sec and the
  ratio; the committed ``benchmarks/baseline_bench.json`` pins that
  ratio so CI catches performance regressions without depending on
  absolute machine speed.

The circuit library (``repro.elements`` / ``repro.link``) constructs its
internal nets and processes through the simulator factory methods
(``sim.signal`` / ``sim.bus`` / ``sim.bus_view`` / ``sim.spawn``), so a
circuit built on a :class:`ReferenceSimulator` is wired entirely from
frozen :class:`ReferenceSignal` / :class:`ReferenceBus` /
:class:`ReferenceProcess` instances.  The factory methods (and the
``created_signals`` registry they feed, which the equivalence tests walk)
are the only non-seed additions here; everything else is verbatim.

Do not optimize this module; its value is that it stays simple and
obviously equal to the seed semantics.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

# shared, semantics-free pieces: the exception type, the time helpers and
# the process wait-condition data classes are identical in both kernels
from .kernel import NS, SimulationError, mhz_period_ps
from .process import Delay, Edge, WaitValue

Listener = Callable[["ReferenceSignal"], None]


class ReferenceSimulator:
    """The seed event wheel: a flat heapq of (time, seq, callback)."""

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: every net built through the factory methods, in creation order
        #: (equivalence-test addition; the seed had no such registry)
        self.created_signals: list["ReferenceSignal"] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self._now

    @property
    def now_ns(self) -> float:
        return self._now / NS

    @property
    def events_executed(self) -> int:
        return self._events_executed

    # ------------------------------------------------------------------
    # scheduling (seed semantics, verbatim)
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> int:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ps into the past at t={self._now}"
            )
        return self.call_at(self._now + delay, callback)

    def call_at(self, when: int, callback: Callable[[], None]) -> int:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} ps, current time is {self._now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, callback))
        return self._seq

    # ------------------------------------------------------------------
    # execution (seed semantics, verbatim)
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                when, _seq, callback = self._queue[0]
                if until is not None and when >= until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = when
                callback()
                executed += 1
                self._events_executed += 1
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at "
                        f"t={self._now} ps — possible livelock"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return executed

    def run_ns(self, until_ns: float, max_events: Optional[int] = None) -> int:
        from .kernel import ns

        return self.run(until=ns(until_ns), max_events=max_events)

    def stop(self) -> None:
        self._stopped = True

    def step(self) -> bool:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if not self._queue:
            return False
        self._running = True
        self._stopped = False
        try:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            self._events_executed += 1
        finally:
            self._running = False
        return True

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def drain(self, max_events: int = 1_000_000) -> int:
        return self.run(until=None, max_events=max_events)

    # ------------------------------------------------------------------
    # construction factories (the seam the circuit library builds through;
    # mirrors the optimized kernel's additions)
    # ------------------------------------------------------------------
    def signal(self, name: str = "sig", init: int = 0,
               cap_ff: float = 1.0) -> "ReferenceSignal":
        sig = ReferenceSignal(self, name, init, cap_ff)
        self.created_signals.append(sig)
        return sig

    def bus(self, width: int, name: str = "bus", init: int = 0,
            cap_ff: float = 1.0) -> "ReferenceBus":
        made = ReferenceBus(self, width, name, init, cap_ff)
        self.created_signals.extend(made.signals)
        return made

    def bus_view(self, signals: list["ReferenceSignal"],
                 name: str = "view") -> "ReferenceBus":
        return ReferenceBus.from_signals(self, signals, name)

    def spawn(self, gen, name: str = "proc") -> "ReferenceProcess":
        proc = ReferenceProcess(self, gen, name)
        self.schedule(0, proc._resume)
        return proc


class ReferenceSignal:
    """The seed single-bit net, verbatim (token-based inertial drives)."""

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_listeners",
        "rising",
        "falling",
        "cap_ff",
        "_drive_token",
        "trace",
        "_forced",
    )

    def __init__(
        self,
        sim: ReferenceSimulator,
        name: str = "sig",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if init not in (0, 1):
            raise ValueError(f"signal init must be 0 or 1, got {init!r}")
        self.sim = sim
        self.name = name
        self._value: int = init
        self._listeners: list[Listener] = []
        self.rising: int = 0
        self.falling: int = 0
        self.cap_ff: float = cap_ff
        self._drive_token: int = 0
        self.trace: Optional[list[tuple[int, int]]] = None
        self._forced: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReferenceSignal({self.name}={self._value} @t={self.sim.now})"

    @property
    def value(self) -> int:
        return self._value

    @property
    def transitions(self) -> int:
        return self.rising + self.falling

    def reset_activity(self) -> None:
        self.rising = 0
        self.falling = 0

    def enable_trace(self) -> None:
        if self.trace is None:
            self.trace = [(self.sim.now, self._value)]

    # ------------------------------------------------------------------
    def on_change(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    def force(self, value: int) -> None:
        self._forced = False
        self.set(value)
        self._forced = True

    def release(self) -> None:
        self._forced = False

    @property
    def is_forced(self) -> bool:
        return self._forced

    def set(self, value: int) -> None:
        if self._forced:
            return
        value = 1 if value else 0
        if value == self._value:
            return
        self._value = value
        if value:
            self.rising += 1
        else:
            self.falling += 1
        if self.trace is not None:
            self.trace.append((self.sim.now, value))
        # iterate over a snapshot: listeners may add listeners
        for listener in tuple(self._listeners):
            listener(self)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        if delay == 0 and inertial:
            self._drive_token += 1
            self.set(value)
            return
        if inertial:
            self._drive_token += 1
            token = self._drive_token

            def apply_inertial() -> None:
                if token == self._drive_token:
                    self.set(value)

            self.sim.schedule(delay, apply_inertial)
        else:
            self.sim.schedule(delay, lambda: self.set(value))

    def pulse(self, width: int, delay: int = 0) -> None:
        self.drive(1, delay, inertial=False)
        self.drive(0, delay + width, inertial=False)


class ReferenceBus:
    """The seed little-endian signal bundle, verbatim per-bit loops."""

    __slots__ = ("sim", "name", "signals", "width")

    def __init__(
        self,
        sim: ReferenceSimulator,
        width: int,
        name: str = "bus",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        if init < 0 or init >= (1 << width):
            raise ValueError(f"init {init} does not fit in {width} bits")
        self.sim = sim
        self.name = name
        self.width = width
        self.signals = [
            ReferenceSignal(
                sim, f"{name}[{i}]", init=(init >> i) & 1, cap_ff=cap_ff
            )
            for i in range(width)
        ]

    @classmethod
    def from_signals(
        cls, sim: ReferenceSimulator, signals: list["ReferenceSignal"],
        name: str = "view"
    ) -> "ReferenceBus":
        if not signals:
            raise ValueError("a bus view needs at least one signal")
        view = cls.__new__(cls)
        view.sim = sim
        view.name = name
        view.width = len(signals)
        view.signals = list(signals)
        return view

    def __len__(self) -> int:
        return self.width

    def __getitem__(self, index: int) -> ReferenceSignal:
        return self.signals[index]

    def __iter__(self) -> Iterable[ReferenceSignal]:
        return iter(self.signals)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReferenceBus({self.name}="
            f"0x{self.value:0{(self.width + 3) // 4}x})"
        )

    @property
    def value(self) -> int:
        total = 0
        for i, sig in enumerate(self.signals):
            total |= sig.value << i
        return total

    def set(self, value: int) -> None:
        self._check(value)
        for i, sig in enumerate(self.signals):
            sig.set((value >> i) & 1)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        self._check(value)
        for i, sig in enumerate(self.signals):
            sig.drive((value >> i) & 1, delay, inertial=inertial)

    def _check(self, value: int) -> None:
        if value < 0 or value >= (1 << self.width):
            raise ValueError(
                f"value {value:#x} does not fit in {self.width}-bit bus "
                f"{self.name!r}"
            )

    def slice(self, low: int, high: int) -> list[ReferenceSignal]:
        if not (0 <= low <= high < self.width):
            raise ValueError(
                f"slice [{low}:{high}] out of range for width {self.width}"
            )
        return self.signals[low : high + 1]

    def on_change(self, listener: Listener) -> None:
        for sig in self.signals:
            sig.on_change(listener)

    @property
    def transitions(self) -> int:
        return sum(sig.transitions for sig in self.signals)

    def reset_activity(self) -> None:
        for sig in self.signals:
            sig.reset_activity()


class ReferenceProcess:
    """The seed generator process, verbatim (closure-per-wait listeners).

    Wait conditions are the *shared* :class:`~repro.sim.process.Delay` /
    ``Edge`` / ``WaitValue`` data classes — they carry no behaviour, so
    sharing them keeps circuit code kernel-agnostic without weakening
    the oracle.
    """

    def __init__(self, sim: ReferenceSimulator, gen, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self._waiting_on: Optional[ReferenceSignal] = None
        self._listener = None

    def _resume(self) -> None:
        if self.finished:
            return
        try:
            condition = next(self.gen)
        except StopIteration:
            self.finished = True
            return
        self._arm(condition)

    def _arm(self, condition) -> None:
        if isinstance(condition, Delay):
            self.sim.schedule(condition.duration, self._resume)
        elif isinstance(condition, Edge):
            self._wait_edge(condition.signal, condition.kind)
        elif isinstance(condition, WaitValue):
            if condition.signal.value == condition.value:
                # resume in a fresh delta so ordering stays deterministic
                self.sim.schedule(0, self._resume)
            else:
                kind = "rise" if condition.value else "fall"
                self._wait_edge(condition.signal, kind)
        else:  # pragma: no cover - defensive
            raise TypeError(
                f"process {self.name!r} yielded {condition!r}; expected "
                "Delay, Edge or WaitValue"
            )

    def _wait_edge(self, signal: ReferenceSignal, kind: str) -> None:
        def listener(sig: ReferenceSignal) -> None:
            if kind == "rise" and sig.value != 1:
                return
            if kind == "fall" and sig.value != 0:
                return
            sig.remove_listener(listener)
            self._resume()

        signal.on_change(listener)

    def kill(self) -> None:
        self.finished = True
        self.gen.close()


def reference_spawn(sim: ReferenceSimulator, gen,
                    name: str = "proc") -> ReferenceProcess:
    """Seed :func:`repro.sim.process.spawn`, bound to the frozen process."""
    return sim.spawn(gen, name)


class ReferenceClock:
    """The seed free-running clock, verbatim toggle scheduling."""

    def __init__(
        self,
        sim: ReferenceSimulator,
        period_ps: int,
        name: str = "clk",
        start_delay_ps: int = 0,
    ) -> None:
        if period_ps < 2:
            raise ValueError(f"clock period must be >= 2 ps, got {period_ps}")
        self.sim = sim
        self.period_ps = period_ps
        self.half_period = period_ps // 2
        self.signal = sim.signal(name, init=0)
        self.cycles: int = 0
        self._running = True
        sim.schedule(start_delay_ps, self._tick)

    @classmethod
    def from_mhz(
        cls,
        sim: ReferenceSimulator,
        freq_mhz: float,
        name: str = "clk",
        start_delay_ps: int = 0,
    ) -> "ReferenceClock":
        return cls(sim, mhz_period_ps(freq_mhz), name, start_delay_ps)

    @property
    def freq_mhz(self) -> float:
        return 1e6 / self.period_ps

    def _tick(self) -> None:
        if not self._running:
            return
        if self.signal.value == 0:
            self.signal.set(1)
            self.cycles += 1
            self.sim.schedule(self.half_period, self._tick)
        else:
            self.signal.set(0)
            self.sim.schedule(self.period_ps - self.half_period, self._tick)

    def stop(self) -> None:
        self._running = False


# Aliases so the equivalence harness can treat this module and
# ``repro.sim`` as interchangeable kernel stacks.
Simulator = ReferenceSimulator
Signal = ReferenceSignal
Bus = ReferenceBus
Process = ReferenceProcess
Clock = ReferenceClock
spawn = reference_spawn

__all__ = [
    "ReferenceSimulator",
    "ReferenceSignal",
    "ReferenceBus",
    "ReferenceProcess",
    "ReferenceClock",
    "reference_spawn",
    "Simulator",
    "Signal",
    "Bus",
    "Process",
    "Clock",
    "spawn",
]
