"""Value-Change-Dump (VCD) export for traced signals.

Writes standard IEEE-1364 VCD so any waveform viewer (GTKWave, Surfer,
WaveTrace) can inspect the handshakes.  Usage::

    tracer = Tracer()
    tracer.watch(link.s2a.out_ch.req, link.s2a.out_ch.ack, ...)
    ... run simulation ...
    write_vcd(tracer, "link.vcd", timescale_ps=1)

Only single-bit signals are dumped (buses are watched bit by bit, which
viewers regroup by name).  The writer is deliberately dependency-free
and streams in one pass over the recorded traces.
"""

from __future__ import annotations

import string
from pathlib import Path
from typing import Iterable, TextIO, Union

from .signal import Signal
from .trace import Tracer

_ID_ALPHABET = string.printable[:94].replace(" ", "")


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    """VCD reference names may not contain whitespace."""
    return name.replace(" ", "_")


def write_vcd(
    tracer: Tracer,
    destination: Union[str, Path, TextIO],
    timescale_ps: int = 1,
    module: str = "repro",
) -> int:
    """Write all watched signals of ``tracer`` as a VCD file.

    Returns the number of value changes written.  ``destination`` may be
    a path or an open text file.
    """
    if timescale_ps < 1:
        raise ValueError(f"timescale must be >= 1 ps, got {timescale_ps}")
    if not tracer.signals:
        raise ValueError("tracer has no watched signals to dump")

    if hasattr(destination, "write"):
        return _write(tracer, destination, timescale_ps, module)  # type: ignore[arg-type]
    with open(destination, "w", encoding="ascii") as handle:
        return _write(tracer, handle, timescale_ps, module)


def _write(tracer: Tracer, out: TextIO, timescale_ps: int, module: str) -> int:
    signals: Iterable[Signal] = tracer.signals
    ids = {id(sig): _identifier(i) for i, sig in enumerate(signals)}

    out.write("$comment repro serialized-async-link simulation $end\n")
    out.write(f"$timescale {timescale_ps} ps $end\n")
    out.write(f"$scope module {_sanitize(module)} $end\n")
    for sig in signals:
        out.write(
            f"$var wire 1 {ids[id(sig)]} {_sanitize(sig.name)} $end\n"
        )
    out.write("$upscope $end\n$enddefinitions $end\n")

    # merge all per-signal change lists into one time-ordered stream
    events: list[tuple[int, str, int]] = []
    initial: dict[str, int] = {}
    for sig in signals:
        trace = sig.trace or [(0, sig.value)]
        initial[ids[id(sig)]] = trace[0][1]
        for when, value in trace[1:]:
            events.append((when, ids[id(sig)], value))
    events.sort(key=lambda item: item[0])

    out.write("$dumpvars\n")
    for ident, value in initial.items():
        out.write(f"{value}{ident}\n")
    out.write("$end\n")

    written = 0
    current_time = None
    for when, ident, value in events:
        stamp = when // timescale_ps
        if stamp != current_time:
            out.write(f"#{stamp}\n")
            current_time = stamp
        out.write(f"{value}{ident}\n")
        written += 1
    return written
