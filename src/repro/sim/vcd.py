"""Value-Change-Dump (VCD) export for traced signals.

Writes standard IEEE-1364 VCD so any waveform viewer (GTKWave, Surfer,
WaveTrace) can inspect the handshakes.  Usage::

    tracer = Tracer()
    tracer.watch(link.s2a.out_ch.req, link.s2a.out_ch.ack, ...)
    ... run simulation ...
    write_vcd(tracer, "link.vcd", timescale_ps=1)

Only single-bit signals are dumped (buses are watched bit by bit, which
viewers regroup by name).  The writer is deliberately dependency-free
and streams in one pass over the recorded traces.

Scoping: net names in this library are hierarchy paths
(``i3.s2a.flag0.a``), so by default every dotted prefix becomes a nested
``$scope module`` block and the variable reference is the leaf name —
the viewer shows the same instance tree as ``repro inspect --tree``.
Pass ``hierarchy=False`` for the legacy single-scope layout.

Identifier allocation is collision-proof in both layouts: each distinct
watched signal object gets its own short id code (watching a signal
twice reuses one id instead of allocating an alias), and two *different*
nets that happen to share a (scope, name) pair get distinct reference
names (``req``, ``req$1``, ...) so no viewer ever folds them together.
"""

from __future__ import annotations

import string
from pathlib import Path
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from .signal import Signal
from .trace import Tracer

_ID_ALPHABET = string.printable[:94].replace(" ", "")


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    """VCD reference names may not contain whitespace."""
    return name.replace(" ", "_")


class _Scope:
    """One ``$scope module`` block: nested scopes + variable leaves."""

    __slots__ = ("name", "children", "vars", "_taken")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: Dict[str, _Scope] = {}
        #: (reference_name, id_code) pairs in declaration order
        self.vars: List[Tuple[str, str]] = []
        self._taken: set = set()

    def child(self, name: str) -> "_Scope":
        scope = self.children.get(name)
        if scope is None:
            scope = self.children[name] = _Scope(name)
        return scope

    def add_var(self, reference: str, ident: str) -> None:
        # two distinct nets with the same name in one scope must not
        # alias in the viewer: disambiguate the later arrivals
        unique = reference
        bump = 0
        while unique in self._taken:
            bump += 1
            unique = f"{reference}${bump}"
        self._taken.add(unique)
        self.vars.append((unique, ident))

    def write(self, out: TextIO) -> None:
        out.write(f"$scope module {self.name} $end\n")
        for reference, ident in self.vars:
            out.write(f"$var wire 1 {ident} {reference} $end\n")
        for child in self.children.values():
            child.write(out)
        out.write("$upscope $end\n")


def write_vcd(
    tracer: Tracer,
    destination: Union[str, Path, TextIO],
    timescale_ps: int = 1,
    module: str = "repro",
    hierarchy: bool = True,
) -> int:
    """Write all watched signals of ``tracer`` as a VCD file.

    Returns the number of value changes written.  ``destination`` may be
    a path or an open text file.  With ``hierarchy=True`` (default) the
    dotted net names become nested ``$scope`` blocks; with
    ``hierarchy=False`` everything lands flat in the top module scope.
    """
    if timescale_ps < 1:
        raise ValueError(f"timescale must be >= 1 ps, got {timescale_ps}")
    if not tracer.signals:
        raise ValueError("tracer has no watched signals to dump")

    if hasattr(destination, "write"):
        return _write(tracer, destination, timescale_ps, module,  # type: ignore[arg-type]
                      hierarchy)
    with open(destination, "w", encoding="ascii") as handle:
        return _write(tracer, handle, timescale_ps, module, hierarchy)


def _unique_signals(signals: Iterable[Signal]) -> List[Signal]:
    """Distinct signal objects, first occurrence wins (no id aliasing)."""
    seen: set = set()
    unique: List[Signal] = []
    for sig in signals:
        key = id(sig)
        if key not in seen:
            seen.add(key)
            unique.append(sig)
    return unique


def _write(tracer: Tracer, out: TextIO, timescale_ps: int, module: str,
           hierarchy: bool) -> int:
    signals = _unique_signals(tracer.signals)
    ids = {id(sig): _identifier(i) for i, sig in enumerate(signals)}

    top = _Scope(_sanitize(module))
    for sig in signals:
        name = _sanitize(sig.name)
        scope = top
        if hierarchy:
            parts = name.split(".")
            for part in parts[:-1]:
                scope = scope.child(part)
            name = parts[-1]
        scope.add_var(name, ids[id(sig)])

    out.write("$comment repro serialized-async-link simulation $end\n")
    out.write(f"$timescale {timescale_ps} ps $end\n")
    top.write(out)
    out.write("$enddefinitions $end\n")

    # merge all per-signal change lists into one time-ordered stream
    events: list[tuple[int, str, int]] = []
    initial: dict[str, int] = {}
    for sig in signals:
        trace = sig.trace or [(0, sig.value)]
        initial[ids[id(sig)]] = trace[0][1]
        for when, value in trace[1:]:
            events.append((when, ids[id(sig)], value))
    events.sort(key=lambda item: item[0])

    out.write("$dumpvars\n")
    for ident, value in initial.items():
        out.write(f"{value}{ident}\n")
    out.write("$end\n")

    written = 0
    current_time = None
    for when, ident, value in events:
        stamp = when // timescale_ps
        if stamp != current_time:
            out.write(f"#{stamp}\n")
            current_time = stamp
        out.write(f"{value}{ident}\n")
        written += 1
    return written
