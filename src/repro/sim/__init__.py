"""Discrete-event simulation substrate.

Everything in the reproduction runs on this kernel: gate-level circuit
models, behavioural link models, and the synchronous NoC substrate.

Public surface:

* :class:`Simulator` — integer-picosecond event wheel
* :class:`Signal` / :class:`Bus` — nets with activity counters
* :class:`Process` / :func:`spawn` + wait conditions — coroutine testbenches
* :class:`Clock` — the single slow switch clock of the paper
* :class:`Tracer` / :class:`ActivityMonitor` — waveforms and power inputs
"""

from .kernel import (
    NS,
    PS,
    US,
    SimulationError,
    Simulator,
    mhz_period_ps,
    ns,
    to_ns,
)
from .signal import Bus, Signal
from .process import (
    Delay,
    Edge,
    FallingEdge,
    Process,
    RisingEdge,
    WaitValue,
    spawn,
)
from .clock import Clock, run_cycles
from .trace import ActivityMonitor, Tracer
from .vcd import write_vcd

__all__ = [
    "NS",
    "PS",
    "US",
    "SimulationError",
    "Simulator",
    "mhz_period_ps",
    "ns",
    "to_ns",
    "Bus",
    "Signal",
    "Delay",
    "Edge",
    "FallingEdge",
    "Process",
    "RisingEdge",
    "WaitValue",
    "spawn",
    "Clock",
    "run_cycles",
    "ActivityMonitor",
    "Tracer",
    "write_vcd",
]
