"""Signals and buses: the wires of the simulated circuit.

A :class:`Signal` is a single-bit net with a current value, a set of
listeners (gates, processes, probes) and transition counters used by the
activity-based power model.  Values are plain ints 0/1; circuits are
brought into a defined state by explicit reset sequences, mirroring how
the paper's netlists use NRESET.

Drives can be *inertial* (a newer drive cancels a pending one — the
behaviour of a real gate output, which filters pulses shorter than its
delay) or *transport* (pure delay line — the behaviour of a wire).

Hot-path design (the seed implementation is frozen verbatim in
:mod:`repro.sim.reference`):

* listeners live in a copy-on-write tuple — dispatch iterates it
  directly, with no per-transition snapshot allocation; ``on_change`` /
  ``remove_listener`` rebuild the tuple instead;
* an inertial drive holds at most one pending event per net, applied by
  a bound method created once at construction — superseding it is a true
  kernel-level :meth:`~repro.sim.kernel.Simulator.cancel`, so stale
  drives never execute and never count against event budgets;
* transport drives reuse two per-net callbacks (``set 0`` / ``set 1``)
  instead of allocating a closure per scheduled edge.

A :class:`Bus` bundles ``width`` signals little-endian (index 0 = LSB) and
provides integer read/write helpers, which keeps the serializer slicing
code close to the paper's ``DIN(15:8)`` notation.  ``set`` runs a single
pass that only pays the ``set`` dispatch for bits that actually change
(checked at visit time, so it is exact); ``drive`` visits every bit but
each visit is allocation-free.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Iterable, Optional

from .kernel import SimulationError, Simulator

Listener = Callable[["Signal"], None]


class Signal:
    """A single-bit net with listeners and activity counters."""

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_listeners",
        "rising",
        "falling",
        "cap_ff",
        "trace",
        "_forced",
        "_pending",
        "_pending_value",
        "_apply_cb",
        "_set0_cb",
        "_set1_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "sig",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if init not in (0, 1):
            raise ValueError(f"signal init must be 0 or 1, got {init!r}")
        self.sim = sim
        self.name = name
        self._value: int = init
        self._listeners: tuple[Listener, ...] = ()
        #: number of 0→1 transitions observed (power model input)
        self.rising: int = 0
        #: number of 1→0 transitions observed
        self.falling: int = 0
        #: effective switched capacitance in femtofarads (power weight)
        self.cap_ff: float = cap_ff
        #: optional list of (time_ps, value) appended on every change
        self.trace: Optional[list[tuple[int, int]]] = None
        self._forced: bool = False
        #: handle of the one outstanding inertial drive, if any
        self._pending = None
        self._pending_value: int = 0
        # per-net callbacks, created once so drives allocate nothing
        self._apply_cb = self._apply_pending
        self._set0_cb = self._apply_0
        self._set1_cb = self._apply_1

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}={self._value} @t={self.sim.now})"

    @property
    def value(self) -> int:
        """Current logic value (0 or 1)."""
        return self._value

    @property
    def transitions(self) -> int:
        """Total number of transitions (rising + falling)."""
        return self.rising + self.falling

    def reset_activity(self) -> None:
        """Zero the transition counters (start of a measurement window)."""
        self.rising = 0
        self.falling = 0

    def enable_trace(self) -> None:
        """Record (time, value) on every change into ``self.trace``."""
        if self.trace is None:
            self.trace = [(self.sim.now, self._value)]

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def on_change(self, listener: Listener) -> None:
        """Register ``listener(signal)`` to run whenever the value flips."""
        self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener: Listener) -> None:
        current = list(self._listeners)
        current.remove(listener)
        self._listeners = tuple(current)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def force(self, value: int) -> None:
        """Force the net to ``value`` and ignore all drivers until
        :meth:`release` — a stuck-at fault / testbench override, like a
        simulator's ``force`` command.

        The force is atomic: listeners observe :attr:`is_forced` already
        True while being notified of the forced transition, and a
        pending inertial drive maturing during the forced window is
        blocked by the guard in :meth:`_apply_pending` — no driver can
        glitch the net mid-force.  The pending drive itself stays
        queued (matching the seed kernel): if it matures only after
        :meth:`release`, it applies normally.
        """
        self._forced = True
        self._transition(1 if value else 0)

    def release(self) -> None:
        """Remove a :meth:`force`; subsequent drives apply normally."""
        self._forced = False

    @property
    def is_forced(self) -> bool:
        return self._forced

    def _transition(self, value: int) -> None:
        """Apply a normalized value, bypassing the force guard."""
        if value == self._value:
            return
        self._value = value
        if value:
            self.rising += 1
        else:
            self.falling += 1
        if self.trace is not None:
            self.trace.append((self.sim._now, value))
        # the tuple is copy-on-write: listeners registered or removed
        # during dispatch rebuild it, leaving this iteration untouched
        for listener in self._listeners:
            listener(self)

    def set(self, value: int) -> None:
        """Apply ``value`` immediately (no delay, still notifies listeners)."""
        if self._forced:
            return
        value = 1 if value else 0
        if value == self._value:
            return
        self._value = value
        if value:
            self.rising += 1
        else:
            self.falling += 1
        if self.trace is not None:
            self.trace.append((self.sim._now, value))
        for listener in self._listeners:
            listener(self)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        """Schedule ``value`` onto the net after ``delay`` picoseconds.

        With ``inertial=True`` (gate-output semantics) any previously
        scheduled drive that has not yet matured is cancelled — removed
        from the event queue for good — so a pulse shorter than the gate
        delay never appears on the output.  With ``inertial=False``
        (transport / wire semantics) every scheduled drive matures
        independently.

        The event insert is a manual inline of
        :meth:`~repro.sim.kernel.Simulator.schedule` — a gate netlist
        issues one drive per input edge, so the call overhead is the
        single hottest line of the whole simulator.  Keep it in sync
        with the kernel's scheduler representation.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ps into the past at "
                f"t={self.sim._now}"
            )
        if inertial:
            pending = self._pending
            if pending is not None:
                self.sim.cancel(pending)
                self._pending = None
            if delay == 0:
                self.set(value)
                return
            self._pending_value = 1 if value else 0
            cell = [self._apply_cb]
        else:
            cell = [self._set1_cb if value else self._set0_cb]
        sim = self.sim
        when = sim._now + delay
        if when < sim._horizon:
            near = sim._near
            bucket = near.get(when)
            if bucket is None:
                near[when] = cell
                heappush(sim._times, when)
            elif len(bucket) == 1:
                near[when] = [1, bucket, cell]
            else:
                bucket.append(cell)
        else:
            sim._seq += 1
            heappush(sim._far, (when, sim._seq, cell))
        sim._live += 1
        if inertial:
            self._pending = cell

    def _apply_pending(self) -> None:
        # inlined ``set(self._pending_value)``; the force guard stays —
        # a drive issued *while* forced still schedules its apply
        self._pending = None
        if self._forced:
            return
        value = self._pending_value
        if value == self._value:
            return
        self._value = value
        if value:
            self.rising += 1
        else:
            self.falling += 1
        if self.trace is not None:
            self.trace.append((self.sim._now, value))
        for listener in self._listeners:
            listener(self)

    def _apply_0(self) -> None:
        self.set(0)

    def _apply_1(self) -> None:
        self.set(1)

    # convenience aliases ------------------------------------------------
    def pulse(self, width: int, delay: int = 0) -> None:
        """Drive a 0→1→0 pulse of ``width`` ps starting ``delay`` ps from now."""
        self.drive(1, delay, inertial=False)
        self.drive(0, delay + width, inertial=False)


class Bus:
    """A little-endian bundle of :class:`Signal` (index 0 = LSB)."""

    __slots__ = ("sim", "name", "signals", "width")

    def __init__(
        self,
        sim: Simulator,
        width: int,
        name: str = "bus",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        if init < 0 or init >= (1 << width):
            raise ValueError(f"init {init} does not fit in {width} bits")
        self.sim = sim
        self.name = name
        self.width = width
        self.signals = [
            Signal(sim, f"{name}[{i}]", init=(init >> i) & 1, cap_ff=cap_ff)
            for i in range(width)
        ]

    @classmethod
    def from_signals(
        cls, sim: Simulator, signals: list["Signal"], name: str = "view"
    ) -> "Bus":
        """A bus *view* over existing signals (no new nets created).

        Used to treat a byte slice of a wide bus as a bus in its own
        right — the paper's ``DIN(15:8)`` feeding a serializer mux.
        """
        if not signals:
            raise ValueError("a bus view needs at least one signal")
        view = cls.__new__(cls)
        view.sim = sim
        view.name = name
        view.width = len(signals)
        view.signals = list(signals)
        return view

    def __len__(self) -> int:
        return self.width

    def __getitem__(self, index: int) -> Signal:
        return self.signals[index]

    def __iter__(self) -> Iterable[Signal]:
        return iter(self.signals)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bus({self.name}=0x{self.value:0{(self.width + 3) // 4}x})"

    @property
    def value(self) -> int:
        """Current integer value of the bus."""
        total = 0
        for sig in reversed(self.signals):
            total = (total << 1) | sig._value
        return total

    def set(self, value: int) -> None:
        """Apply an integer value immediately to every bit.

        One pass over the bits; bits already at their target value cost
        a slot compare, only changed bits pay the ``set`` dispatch.
        """
        self._check(value)
        for i, sig in enumerate(self.signals):
            bit = (value >> i) & 1
            if sig._value != bit:
                sig.set(bit)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        """Schedule an integer value onto every bit after ``delay`` ps.

        Every bit is driven, including bits already at their target
        value: an inertial drive's scheduled apply re-asserts the bit at
        maturity, which matters when another driver (a transport wire, a
        direct ``set``) flips it in the meantime — skipping "unchanged"
        bits would diverge from the frozen seed kernel.

        The per-bit work is :meth:`Signal.drive` inlined (registers and
        flit pipelines issue a full bus drive per clock edge, so the
        per-bit call overhead is hot); keep it in sync with the kernel's
        scheduler representation.
        """
        self._check(value)
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ps into the past at "
                f"t={self.sim.now}"
            )
        if delay == 0 and inertial:
            sim = self.sim
            for i, sig in enumerate(self.signals):
                pending = sig._pending
                if pending is not None:
                    sim.cancel(pending)
                    sig._pending = None
                sig.set((value >> i) & 1)
            return
        sim = self.sim
        when = sim._now + delay
        near = sim._near
        far = sim._far
        times = sim._times
        horizon = sim._horizon
        live = 0
        for i, sig in enumerate(self.signals):
            if inertial:
                pending = sig._pending
                if pending is not None:
                    sim.cancel(pending)
                sig._pending_value = (value >> i) & 1
                cell = [sig._apply_cb]
                sig._pending = cell
            else:
                cell = [sig._set1_cb if (value >> i) & 1 else sig._set0_cb]
            if when < horizon:
                bucket = near.get(when)
                if bucket is None:
                    near[when] = cell
                    heappush(times, when)
                elif len(bucket) == 1:
                    near[when] = [1, bucket, cell]
                else:
                    bucket.append(cell)
            else:
                sim._seq += 1
                heappush(far, (when, sim._seq, cell))
            live += 1
        sim._live += live

    def _check(self, value: int) -> None:
        if value < 0 or value >= (1 << self.width):
            raise ValueError(
                f"value {value:#x} does not fit in {self.width}-bit bus "
                f"{self.name!r}"
            )

    def slice(self, low: int, high: int) -> list[Signal]:
        """Signals for bit range ``[low, high]`` inclusive (paper notation

        ``DIN(15:8)`` is ``bus.slice(8, 15)``).
        """
        if not (0 <= low <= high < self.width):
            raise ValueError(
                f"slice [{low}:{high}] out of range for width {self.width}"
            )
        return self.signals[low : high + 1]

    def on_change(self, listener: Listener) -> None:
        """Register ``listener`` on every bit of the bus."""
        for sig in self.signals:
            sig.on_change(listener)

    @property
    def transitions(self) -> int:
        """Total transitions across all bits (power model input)."""
        return sum(sig.rising + sig.falling for sig in self.signals)

    def reset_activity(self) -> None:
        for sig in self.signals:
            sig.reset_activity()
