"""Signals and buses: the wires of the simulated circuit.

A :class:`Signal` is a single-bit net with a current value, a set of
listeners (gates, processes, probes) and transition counters used by the
activity-based power model.  Values are plain ints 0/1; circuits are
brought into a defined state by explicit reset sequences, mirroring how
the paper's netlists use NRESET.

Drives can be *inertial* (a newer drive cancels a pending one — the
behaviour of a real gate output, which filters pulses shorter than its
delay) or *transport* (pure delay line — the behaviour of a wire).

A :class:`Bus` bundles ``width`` signals little-endian (index 0 = LSB) and
provides integer read/write helpers, which keeps the serializer slicing
code close to the paper's ``DIN(15:8)`` notation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .kernel import Simulator

Listener = Callable[["Signal"], None]


class Signal:
    """A single-bit net with listeners and activity counters."""

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_listeners",
        "rising",
        "falling",
        "cap_ff",
        "_drive_token",
        "trace",
        "_forced",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "sig",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if init not in (0, 1):
            raise ValueError(f"signal init must be 0 or 1, got {init!r}")
        self.sim = sim
        self.name = name
        self._value: int = init
        self._listeners: list[Listener] = []
        #: number of 0→1 transitions observed (power model input)
        self.rising: int = 0
        #: number of 1→0 transitions observed
        self.falling: int = 0
        #: effective switched capacitance in femtofarads (power weight)
        self.cap_ff: float = cap_ff
        self._drive_token: int = 0
        #: optional list of (time_ps, value) appended on every change
        self.trace: Optional[list[tuple[int, int]]] = None
        self._forced: bool = False

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}={self._value} @t={self.sim.now})"

    @property
    def value(self) -> int:
        """Current logic value (0 or 1)."""
        return self._value

    @property
    def transitions(self) -> int:
        """Total number of transitions (rising + falling)."""
        return self.rising + self.falling

    def reset_activity(self) -> None:
        """Zero the transition counters (start of a measurement window)."""
        self.rising = 0
        self.falling = 0

    def enable_trace(self) -> None:
        """Record (time, value) on every change into ``self.trace``."""
        if self.trace is None:
            self.trace = [(self.sim.now, self._value)]

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def on_change(self, listener: Listener) -> None:
        """Register ``listener(signal)`` to run whenever the value flips."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def force(self, value: int) -> None:
        """Force the net to ``value`` and ignore all drivers until
        :meth:`release` — a stuck-at fault / testbench override, like a
        simulator's ``force`` command."""
        self._forced = False
        self.set(value)
        self._forced = True

    def release(self) -> None:
        """Remove a :meth:`force`; subsequent drives apply normally."""
        self._forced = False

    @property
    def is_forced(self) -> bool:
        return self._forced

    def set(self, value: int) -> None:
        """Apply ``value`` immediately (no delay, still notifies listeners)."""
        if self._forced:
            return
        value = 1 if value else 0
        if value == self._value:
            return
        self._value = value
        if value:
            self.rising += 1
        else:
            self.falling += 1
        if self.trace is not None:
            self.trace.append((self.sim.now, value))
        # iterate over a snapshot: listeners may add listeners
        for listener in tuple(self._listeners):
            listener(self)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        """Schedule ``value`` onto the net after ``delay`` picoseconds.

        With ``inertial=True`` (gate-output semantics) any previously
        scheduled drive that has not yet matured is cancelled, so a pulse
        shorter than the gate delay never appears on the output.  With
        ``inertial=False`` (transport / wire semantics) every scheduled
        drive matures independently.
        """
        if delay == 0 and inertial:
            self._drive_token += 1
            self.set(value)
            return
        if inertial:
            self._drive_token += 1
            token = self._drive_token

            def apply_inertial() -> None:
                if token == self._drive_token:
                    self.set(value)

            self.sim.schedule(delay, apply_inertial)
        else:
            self.sim.schedule(delay, lambda: self.set(value))

    # convenience aliases ------------------------------------------------
    def pulse(self, width: int, delay: int = 0) -> None:
        """Drive a 0→1→0 pulse of ``width`` ps starting ``delay`` ps from now."""
        self.drive(1, delay, inertial=False)
        self.drive(0, delay + width, inertial=False)


class Bus:
    """A little-endian bundle of :class:`Signal` (index 0 = LSB)."""

    __slots__ = ("sim", "name", "signals", "width")

    def __init__(
        self,
        sim: Simulator,
        width: int,
        name: str = "bus",
        init: int = 0,
        cap_ff: float = 1.0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        if init < 0 or init >= (1 << width):
            raise ValueError(f"init {init} does not fit in {width} bits")
        self.sim = sim
        self.name = name
        self.width = width
        self.signals = [
            Signal(sim, f"{name}[{i}]", init=(init >> i) & 1, cap_ff=cap_ff)
            for i in range(width)
        ]

    @classmethod
    def from_signals(
        cls, sim: Simulator, signals: list["Signal"], name: str = "view"
    ) -> "Bus":
        """A bus *view* over existing signals (no new nets created).

        Used to treat a byte slice of a wide bus as a bus in its own
        right — the paper's ``DIN(15:8)`` feeding a serializer mux.
        """
        if not signals:
            raise ValueError("a bus view needs at least one signal")
        view = cls.__new__(cls)
        view.sim = sim
        view.name = name
        view.width = len(signals)
        view.signals = list(signals)
        return view

    def __len__(self) -> int:
        return self.width

    def __getitem__(self, index: int) -> Signal:
        return self.signals[index]

    def __iter__(self) -> Iterable[Signal]:
        return iter(self.signals)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bus({self.name}=0x{self.value:0{(self.width + 3) // 4}x})"

    @property
    def value(self) -> int:
        """Current integer value of the bus."""
        total = 0
        for i, sig in enumerate(self.signals):
            total |= sig.value << i
        return total

    def set(self, value: int) -> None:
        """Apply an integer value immediately to every bit."""
        self._check(value)
        for i, sig in enumerate(self.signals):
            sig.set((value >> i) & 1)

    def drive(self, value: int, delay: int = 0, inertial: bool = True) -> None:
        """Schedule an integer value onto every bit after ``delay`` ps."""
        self._check(value)
        for i, sig in enumerate(self.signals):
            sig.drive((value >> i) & 1, delay, inertial=inertial)

    def _check(self, value: int) -> None:
        if value < 0 or value >= (1 << self.width):
            raise ValueError(
                f"value {value:#x} does not fit in {self.width}-bit bus "
                f"{self.name!r}"
            )

    def slice(self, low: int, high: int) -> list[Signal]:
        """Signals for bit range ``[low, high]`` inclusive (paper notation

        ``DIN(15:8)`` is ``bus.slice(8, 15)``).
        """
        if not (0 <= low <= high < self.width):
            raise ValueError(
                f"slice [{low}:{high}] out of range for width {self.width}"
            )
        return self.signals[low : high + 1]

    def on_change(self, listener: Listener) -> None:
        """Register ``listener`` on every bit of the bus."""
        for sig in self.signals:
            sig.on_change(listener)

    @property
    def transitions(self) -> int:
        """Total transitions across all bits (power model input)."""
        return sum(sig.transitions for sig in self.signals)

    def reset_activity(self) -> None:
        for sig in self.signals:
            sig.reset_activity()
