"""Section V worked example — cycle delay and throughput upper bounds.

The paper evaluates the per-word equation with its measured constants
(Tp = 0, Tinv = 0.011 ns, Tburst ≈ 1.1 ns, Tvalidwordack ≈ 0.7 ns,
Tackout ≈ 1.4 ns), quoting D = 3.21 ns → ≈311 MFlit/s, "which matches
the supported bandwidths shown in Fig 10".  Evaluating the published
formula with the published constants actually yields 3.288 ns →
304 MFlit/s — a 2.4 % arithmetic discrepancy in the original that we
flag rather than hide; both values support the ≥300 MFlit/s claim.

This experiment reports three numbers per link:

* the analytical cycle delay / ceiling from the equations;
* the *simulated* ceiling from the gate-level link driven by an
  overclocked switch (so the serial path, not the clock, limits);
* the delivered throughput behind a 300 MHz switch (the paper's
  headline operating point).
"""

from __future__ import annotations

from typing import Optional

from ..sim.clock import Clock
from ..sim.kernel import Simulator
from ..tech.technology import Technology
from ..link.assemblies import LinkConfig, build_link
from ..link.testbench import measure_throughput
from ..analysis.timing import (
    per_transfer_cycle_delay,
    per_word_cycle_delay,
)
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

PAPER_PER_WORD_DELAY_NS = 3.21
PAPER_PER_WORD_CEILING_MFLITS = 311.0
PAPER_OPERATING_MFLITS = 300.0


def simulate_ceiling_mflits(
    kind: str,
    tech: Technology,
    n_buffers: int = 4,
    n_flits: int = 32,
    overclock_mhz: float = 1000.0,
) -> float:
    """Gate-level serial ceiling: overclock the switch, measure the link."""
    sim = Simulator()
    clock = Clock.from_mhz(sim, overclock_mhz)
    link = build_link(sim, clock.signal, kind,
                      LinkConfig(n_buffers=n_buffers), tech)
    measurement = measure_throughput(sim, clock, link, n_flits=n_flits)
    return measurement.throughput_mflits


def simulate_at_clock_mflits(
    kind: str,
    tech: Technology,
    freq_mhz: float = 300.0,
    n_buffers: int = 4,
    n_flits: int = 24,
) -> float:
    """Delivered throughput behind a switch at ``freq_mhz``."""
    sim = Simulator()
    clock = Clock.from_mhz(sim, freq_mhz)
    link = build_link(sim, clock.signal, kind,
                      LinkConfig(n_buffers=n_buffers), tech)
    measurement = measure_throughput(sim, clock, link, n_flits=n_flits)
    return measurement.throughput_mflits


def build_design(
    tech: Optional[Technology] = None,
    n_buffers: int = 4,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    **_ignored,
):
    """The measured link as an elaborated instance tree — the
    gate-level netlist behind ``repro inspect throughput --tree``."""
    from ..design import link_design

    return link_design(
        kind=kind,
        config=LinkConfig(n_buffers=n_buffers),
        tech=resolve_tech(tech),
        freq_mhz=freq_mhz,
        sim=Simulator(),
    )


@scenario(
    "throughput",
    description="Section V — cycle-delay equations vs gate-level throughput",
    tags=("paper", "section-v", "simulated"),
    design=build_design,
    params=(
        ParamSpec("n_buffers", int, 4),
        ParamSpec("simulate", bool, True,
                  help="cross-check against gate-level runs"),
    ),
    fast_params={"simulate": False},
)
def run(
    tech: Optional[Technology] = None,
    n_buffers: int = 4,
    simulate: bool = True,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    pw = per_word_cycle_delay(tech.handshake, n_buffers=n_buffers)
    pt = per_transfer_cycle_delay(tech.handshake, n_buffers=n_buffers)

    rows: list[list[object]] = [
        ["I2 analytic (per-transfer eqn)", f"{pt.cycle_delay_ns:.3f}",
         f"{pt.mflits:.1f}"],
        ["I3 analytic (per-word eqn)", f"{pw.cycle_delay_ns:.3f}",
         f"{pw.mflits:.1f}"],
    ]
    checks = [
        Check("I3 analytic cycle delay (ns)", pw.cycle_delay_ns,
              PAPER_PER_WORD_DELAY_NS, 0.03),
        Check("I3 analytic ceiling (MFlit/s)", pw.mflits,
              PAPER_PER_WORD_CEILING_MFLITS, 0.03),
    ]

    if simulate:
        sim_i2 = simulate_ceiling_mflits("I2", tech, n_buffers)
        sim_i3 = simulate_ceiling_mflits("I3", tech, n_buffers)
        at300_i3 = simulate_at_clock_mflits("I3", tech, 300.0, n_buffers)
        rows.extend(
            [
                ["I2 gate-level ceiling", f"{1e3 / sim_i2:.3f}",
                 f"{sim_i2:.1f}"],
                ["I3 gate-level ceiling", f"{1e3 / sim_i3:.3f}",
                 f"{sim_i3:.1f}"],
                ["I3 behind 300 MHz switch", "-", f"{at300_i3:.1f}"],
            ]
        )
        checks.extend(
            [
                Check("I2 gate-level vs analytic (MFlit/s)", sim_i2,
                      pt.mflits, 0.05),
                Check("I3 gate-level vs analytic (MFlit/s)", sim_i3,
                      pw.mflits, 0.05),
                Check("I3 delivered @300 MHz switch", at300_i3,
                      PAPER_OPERATING_MFLITS, 0.02),
            ]
        )

    return ExperimentResult(
        experiment_id="Sec V eqns",
        description="Cycle delay and throughput upper bounds",
        headers=("link / model", "cycle delay (ns)", "ceiling (MFlit/s)"),
        rows=rows,
        checks=checks,
        notes=(
            "The paper's 3.21 ns / 311 MFlit/s involves a ~2 % arithmetic "
            "slip; the published formula with the published constants gives "
            "3.288 ns / 304 MFlit/s. Checks use 3 % tolerance to span both."
        ),
    )
