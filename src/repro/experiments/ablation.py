"""Ablations beyond the paper's published data.

Three studies the paper gestures at but does not quantify:

* **serialization-ratio sweep** — the circuits "can easily be modified"
  for other slice widths; we sweep 32→{16, 8, 4, 2} and report wires,
  ceiling throughput and wiring area for both ack schemes.  The
  per-transfer scheme degrades linearly with the slice count (every
  slice pays a full handshake) while the per-word scheme only pays a
  longer burst — exactly the motivation of Section IV.
* **early acknowledge** — the paper's stated future work ("earlier
  acknowledging or nacking"); the extension deserializer acknowledges
  before the burst tail, shortening the word cycle.
* **buffer-count scaling** — throughput as the wire-buffer /repeater
  count grows (the paper only reports power vs buffers).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tech.technology import Technology
from ..sim.clock import Clock
from ..sim.kernel import Simulator
from ..link.assemblies import LinkConfig, build_i3
from ..link.testbench import measure_throughput
from ..analysis.timing import (
    per_transfer_cycle_delay,
    per_word_cycle_delay,
    scaled_word_timings,
)
from ..analysis.area import wire_area_um2
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech


@scenario(
    "ablation-serialization",
    description="Ablation A — slice-width design space for both ack schemes",
    tags=("ablation", "extension", "analytical"),
    params=(
        ParamSpec("n_buffers", int, 4),
        ParamSpec("wire_length_um", float, 1000.0),
    ),
)
def serialization_sweep(
    tech: Optional[Technology] = None,
    slice_widths: Sequence[int] = (32, 16, 8, 4, 2),
    flit_width: int = 32,
    n_buffers: int = 4,
    wire_length_um: float = 1000.0,
) -> ExperimentResult:
    """Slice-width design space for both acknowledgement schemes."""
    tech = resolve_tech(tech)
    timings = tech.handshake
    rows = []
    for slice_width in slice_widths:
        n_slices = flit_width // slice_width
        # the burst period scales with the slice count (same per-slice
        # launch interval as the calibrated 4-slice configuration)
        scaled = scaled_word_timings(timings, n_slices)
        i2 = per_transfer_cycle_delay(timings, n_slices, n_buffers)
        i3 = per_word_cycle_delay(scaled, n_slices, n_buffers)
        area = wire_area_um2(slice_width, wire_length_um, tech)
        rows.append(
            [
                f"{flit_width}->{slice_width}",
                slice_width,
                f"{i2.mflits:.0f}",
                f"{i3.mflits:.0f}",
                round(area),
            ]
        )
    # shape check: per-transfer at 2-bit slices is far below per-word
    i2_w2 = per_transfer_cycle_delay(timings, flit_width // 2, n_buffers)
    i3_w2 = per_word_cycle_delay(
        scaled_word_timings(timings, flit_width // 2),
        flit_width // 2,
        n_buffers,
    )
    checks = [
        Check(
            "per-word advantage at 2-bit slices (I3/I2 ceiling)",
            i3_w2.mflits / i2_w2.mflits,
            i3_w2.mflits / i2_w2.mflits,  # recorded, not externally pinned
            1.0,
        )
    ]
    return ExperimentResult(
        experiment_id="Ablation A",
        description="Serialization-ratio sweep (slice width design space)",
        headers=("ratio", "data wires", "I2 ceiling (MF/s)",
                 "I3 ceiling (MF/s)", f"wire area @{wire_length_um:.0f}um"),
        rows=rows,
        checks=checks,
        notes=(
            "Per-transfer ack pays one handshake per slice; per-word ack "
            "pays one per flit — the gap widens as serialization deepens "
            "(the Section IV motivation)."
        ),
    )


@scenario(
    "ablation-early-ack",
    description="Ablation B — acknowledge before the burst tail "
                "(gate-level only)",
    tags=("ablation", "extension", "simulated"),
    params=(
        ParamSpec("n_buffers", int, 4),
        ParamSpec("n_flits", int, 12),
    ),
    fast_skip=True,
)
def early_ack_study(
    tech: Optional[Technology] = None,
    n_buffers: int = 4,
    n_flits: int = 24,
    overclock_mhz: float = 1000.0,
) -> ExperimentResult:
    """Future-work extension: ack before the burst completes."""
    tech = resolve_tech(tech)
    rows = []
    ceilings = {}
    for early_by in (0, 1, 2, 3):
        sim = Simulator()
        clock = Clock.from_mhz(sim, overclock_mhz)
        config = LinkConfig(n_buffers=n_buffers, early_ack_by=early_by)
        link = build_i3(sim, clock.signal, config, tech)
        m = measure_throughput(sim, clock, link, n_flits=n_flits)
        ceilings[early_by] = m.throughput_mflits
        label = "paper (ack after burst)" if early_by == 0 else (
            f"early by {early_by} slice(s)"
        )
        rows.append([label, f"{m.throughput_mflits:.1f}",
                     f"{m.mean_latency_ns:.1f}"])

    checks = [
        Check(
            "early ack (1 slice) speeds up I3",
            ceilings[1] / ceilings[0],
            1.05,  # at least a 5 % gain expected
            0.0,
            mode="at_least",
        )
    ]
    return ExperimentResult(
        experiment_id="Ablation B",
        description="Early word-acknowledge extension (paper future work)",
        headers=("variant", "ceiling (MFlit/s)", "mean latency (ns)"),
        rows=rows,
        checks=checks,
        notes=(
            "Acknowledging before the last slice overlaps the ack round "
            "trip with the burst tail, raising the word rate."
        ),
    )


@scenario(
    "ablation-buffers",
    description="Ablation C — throughput ceilings vs buffer/repeater count",
    tags=("ablation", "extension", "analytical"),
)
def buffer_count_study(
    tech: Optional[Technology] = None,
    buffer_counts: Sequence[int] = (2, 4, 6, 8),
) -> ExperimentResult:
    """Throughput ceilings vs buffer/repeater count (analytical)."""
    tech = resolve_tech(tech)
    rows = []
    for n in buffer_counts:
        i2 = per_transfer_cycle_delay(tech.handshake, n_buffers=n)
        i3 = per_word_cycle_delay(tech.handshake, n_buffers=n)
        rows.append([n, f"{i2.mflits:.1f}", f"{i3.mflits:.1f}"])
    i3_2 = per_word_cycle_delay(tech.handshake, n_buffers=2).mflits
    i3_8 = per_word_cycle_delay(tech.handshake, n_buffers=8).mflits
    checks = [
        Check(
            "I3 ceiling insensitivity to buffers (8buf/2buf)",
            i3_8 / i3_2,
            1.0,
            0.05,
        )
    ]
    return ExperimentResult(
        experiment_id="Ablation C",
        description="Throughput ceiling vs buffer count",
        headers=("buffers", "I2 ceiling (MFlit/s)", "I3 ceiling (MFlit/s)"),
        rows=rows,
        checks=checks,
        notes=(
            "With Tp = 0 the per-word ceiling barely moves with the "
            "repeater count (only 2·Tinv per station); with long wires the "
            "per-transfer scheme pays the wire delay once per slice."
        ),
    )
