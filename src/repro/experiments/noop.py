"""A no-op grid point: the dispatch-overhead measuring stick.

``sweep-noop`` computes nothing — one row echoing its grid index —
so sweeping it prices the machinery *around* scenario execution:
engine planning, journal/telemetry flushes, fabric lease traffic.
The bench sweep suite (``repro bench --suite sweep``) times a grid of
these points through the coordinator and through the bare engine; the
ratio is pure scheduling overhead, uncontaminated by simulation work.

The batch hook packs adjacent points (up to 16 per lease) exactly like
the compiled backend's lane packing, so the fabric's per-item file
traffic amortizes the way a real batched sweep's would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runner.registry import ParamSpec, scenario
from .common import ExperimentResult


def _result(point: int) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="sweep-noop",
        description="no-op dispatch-overhead workload",
        headers=("point", "value"),
        rows=[[point, 0]],
        checks=[],
    )


def _batch(tech=None, param_sets: Optional[List[Dict[str, object]]] = None
           ) -> List[ExperimentResult]:
    return [_result(int(p["point"])) for p in (param_sets or [])]


@scenario(
    "sweep-noop",
    description="no-op grid point for scheduling-overhead benchmarks",
    tags=("bench",),
    params=(
        ParamSpec("point", int, 0, help="grid index (the only axis)"),
    ),
    batch=_batch,
    batch_axis="point",
    batch_lanes=16,
)
def run(tech=None, point: int = 0) -> ExperimentResult:
    return _result(point)
