"""Monte Carlo fault campaign on the bit-parallel compiled backend.

One compiled evaluation carries 64 independent lanes; this campaign
spends them on a classic use: lane 0 runs the *golden* circuit, the
next ``faults`` lanes run the same stimulus with one net stuck per
lane, and detection is a bitwise XOR against the golden lane on the
output nets — one run prices a whole fault list.

The scenario registers a ``batch`` hook: sweep requests that differ
only in ``seed`` pack their lane groups side by side into one 64-bit
word (a request with 3 fault lanes occupies 4 bits), so a 16-seed
sweep costs one compiled run instead of sixteen.  The hook returns
per-request results identical to solo runs — the engine, store and
journal cannot tell the difference (``tests/test_compiled_runner.py``
pins that).

Checks are exact invariants, not tolerances:

* golden-lane readback — the de-serializer register slots (or the
  latched word and its parity for ``i1``) must reassemble exactly the
  stimulus that was driven, replayed independently in plain Python;
* the golden lane must actually toggle (a dead circuit detects
  nothing);
* fault coverage must clear a floor — stuck nets on active paths are
  observable at the outputs for any healthy stimulus set.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiled import ALL, build_bench, compile_component, stimulus_phases
from ..design import Design
from ..obs.metrics import REGISTRY as _OBS
from ..runner.registry import ParamSpec, scenario
from ..sim.kernel import Simulator
from ..tech.technology import Technology
from .common import Check, ExperimentResult

#: lanes per packed word
_LANES = 64


def _fault_plan(seed: int, faults: int,
                sites: Sequence[str]) -> List[Tuple[str, int]]:
    """Seeded (site, stuck_value) choice for each fault lane."""
    rng = random.Random(f"campaign:{seed}")
    return [
        (sites[rng.randrange(len(sites))], rng.randrange(2))
        for _ in range(faults)
    ]


def _expected_readback(kind: str, phases: List[Dict[str, int]],
                       lane: int, width: int) -> Dict[str, int]:
    """Replay the stimulus in plain Python: expected final output bits.

    ``i1``: the latched word equals the last data vector, the parity
    net its xor-reduction.  ``i2``/``i3``: the 2-bit counter walks the
    slots in order, so register slot ``s`` holds slice ``s`` of the
    last data phase that preceded an edge at counter state ``s``.
    """
    expected: Dict[str, int] = {}
    if kind == "i1":
        data = {}
        for phase in phases:
            if any(name.startswith("i1.d[") for name in phase):
                data = phase
        parity = 0
        for b in range(width):
            bit = (data[f"i1.d[{b}]"] >> lane) & 1
            expected[f"i1.lat.q[{b}]"] = bit
            parity ^= bit
        # the parity tree's final xor output net
        expected[f"i1.x{width - 2}.out"] = parity
        return expected
    sw = max(1, width // 4)
    counter = 0
    last_data: Dict[str, int] = {}
    for phase in phases:
        if f"{kind}.rst" in phase and (phase[f"{kind}.rst"] >> lane) & 1:
            counter = 0
            continue
        if any(name.startswith(f"{kind}.s0[") for name in phase):
            last_data = phase
            continue
        if (f"{kind}.clk" in phase
                and (phase[f"{kind}.clk"] >> lane) & 1):
            # posedge: slot `counter` captures slice `counter`
            for b in range(sw):
                bit = (last_data[f"{kind}.s{counter}[{b}]"] >> lane) & 1
                expected[f"{kind}.r{counter}.q[{b}]"] = bit
            counter = (counter + 1) % 4
    return expected


def _run_campaign(param_sets: Sequence[Dict[str, object]]
                  ) -> List[ExperimentResult]:
    """Shared solo/batch core: pack requests into lanes, run once.

    Each request occupies ``1 + faults`` adjacent lanes (golden +
    fault lanes).  Requests beyond one word's capacity run in further
    compiled passes — callers never need to mind the 64-lane boundary.
    """
    first = param_sets[0]
    kind = str(first["kind"])
    faults = int(first["faults"])
    vectors = int(first["vectors"])
    width = int(first["width"])
    group = 1 + faults
    per_word = max(1, _LANES // group)

    results: List[ExperimentResult] = []
    for base in range(0, len(param_sets), per_word):
        chunk = param_sets[base:base + per_word]
        if _OBS.enabled:
            _OBS.histogram(
                "compiled.lanes_packed", (1, 4, 8, 16, 32, 64)
            ).observe(len(chunk) * group)
        sim = Simulator()
        bench = build_bench(sim, kind, width)
        circuit = compile_component(bench.root,
                                    forceable=bench.fault_sites)
        seeds = [int(p["seed"]) for p in chunk]
        lane_seeds: List[object] = []
        for seed in seeds:
            lane_seeds.extend([seed] * group)
        lane_seeds.extend([0] * (_LANES - len(lane_seeds)))
        phases = stimulus_phases(kind, lane_seeds, vectors, width)

        plans = [
            _fault_plan(seed, faults, bench.fault_sites)
            for seed in seeds
        ]
        for r, plan in enumerate(plans):
            offset = r * group
            for j, (site, stuck) in enumerate(plan, start=1):
                circuit.force(site, stuck * ALL,
                              lanes=1 << (offset + j))

        sub_mask = (1 << group) - 1
        detect = [0] * len(chunk)
        for phase in phases:
            circuit.step(phase)
            for name in bench.outputs:
                word = circuit.peek(name)
                for r in range(len(chunk)):
                    seg = (word >> (r * group)) & sub_mask
                    golden = seg & 1
                    detect[r] |= seg ^ (golden * sub_mask)

        counts = circuit.counts()
        for r, (params, plan, seed) in enumerate(
                zip(chunk, plans, seeds)):
            offset = r * group
            expected = _expected_readback(kind, phases, offset, width)
            matched = sum(
                1 for name, bit in expected.items()
                if circuit.lane(name, offset) == bit
            )
            readback = matched / max(1, len(expected))
            detected = [
                bool((detect[r] >> j) & 1)
                for j in range(1, group)
            ]
            coverage = (
                sum(detected) / faults if faults else 1.0
            )
            rows: List[Sequence[object]] = [
                [seed, j, site, f"stuck-at-{stuck}",
                 "yes" if hit else "no"]
                for j, ((site, stuck), hit) in enumerate(
                    zip(plan, detected), start=1)
            ]
            checks = [
                Check(
                    "golden-lane readback (replayed stimulus)",
                    readback, 1.0, 0.0,
                ),
                Check(
                    # boolean, not the raw count: the aggregate counter
                    # depends on how many lanes the word happened to
                    # carry, which must not leak into batch-vs-solo
                    # result identity
                    "circuit toggles under stimulus",
                    1.0 if counts["rising_all"] else 0.0,
                    1.0, 0.0, mode="at_least",
                ),
                Check(
                    "fault coverage on output nets",
                    coverage, 0.5, 0.0, mode="at_least",
                ),
            ]
            results.append(ExperimentResult(
                experiment_id="Compiled fault campaign",
                description=(
                    f"{kind} bench ({width} bit), seed {seed}, "
                    f"{vectors} vectors, {faults} stuck-net lanes; "
                    f"coverage {coverage:.0%}"
                ),
                headers=("seed", "lane", "fault site", "model",
                         "detected"),
                rows=rows,
                checks=checks,
            ))
    return results


def build_design(
    tech: Optional[Technology] = None,
    kind: str = "i3",
    width: int = 32,
    **_ignored,
) -> Design:
    """Structural view for ``repro inspect`` (and its compiled stats)."""
    sim = Simulator()
    bench = build_bench(sim, kind, width)
    # the campaign's scoreboard reads exactly these nets; declaring
    # them keeps static analysis honest about what is observable
    return Design(bench.root, sim, watched=list(bench.outputs))


def _batch(tech: Optional[Technology] = None,
           param_sets: Sequence[Dict[str, object]] = ()
           ) -> List[ExperimentResult]:
    return _run_campaign(list(param_sets))


@scenario(
    "compiled-fault-campaign",
    description=(
        "Monte Carlo stuck-net campaign on the compiled backend: "
        "golden lane + fault lanes share one 64-bit word; sweep seeds "
        "pack into the spare lanes"
    ),
    tags=("compiled", "fault", "extension", "sweep"),
    params=(
        ParamSpec(
            "kind", str, "i3",
            help="compilable bench family",
            choices=("i1", "i2", "i3"),
        ),
        ParamSpec(
            "seed", int, 1,
            help="stimulus seed (the packable sweep axis)",
            sweep=(1, 2, 3, 4, 5, 6, 7, 8),
        ),
        ParamSpec(
            "vectors", int, 24,
            help="stimulus vectors (words driven through the bench)",
        ),
        ParamSpec(
            "faults", int, 3,
            help="stuck-net lanes per seed (0 = golden only)",
            choices=(0, 1, 2, 3, 7, 15),
        ),
        ParamSpec(
            "width", int, 32,
            help="bench data width in bits",
            choices=(8, 16, 32),
        ),
    ),
    fast_params={"vectors": 6, "width": 16},
    design=build_design,
    batch=_batch,
    batch_axis="seed",
    batch_lanes=16,
)
def run(
    tech: Optional[Technology] = None,
    kind: str = "i3",
    seed: int = 1,
    vectors: int = 24,
    faults: int = 3,
    width: int = 32,
) -> ExperimentResult:
    return _run_campaign([{
        "kind": kind, "seed": seed, "vectors": vectors,
        "faults": faults, "width": width,
    }])[0]
