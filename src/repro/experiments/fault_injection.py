"""Fault-injection campaign workload (thin wrapper over the noc layer).

The gate-level failure tests (``tests/test_failure_injection.py``)
break individual links — stuck handshakes, severed wires — and assert
loud failure.  This scenario runs the mesh-scale counterpart: a seeded
campaign degrades a chosen number of directed links (reduced sustained
rate, added latency — the behavioural signature of a marginal or
partially failed serializer chain) via the kernel's per-link parameter
hook, then drives traffic across the damaged mesh.

With the default ``west_first`` adaptive routing the mesh is expected
to *route around* the slow links; the scenario also runs the identical
traffic on a healthy mesh so the reported table shows the latency cost
of the faults directly.  Checks are invariants: degraded links must
slow traffic down, never drop it.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..design import Design, MeshDesign
from ..link.behavioral import BehavioralLinkParams, derive_link_params
from ..noc import Topology, run_mesh_point
from ..runner.registry import ParamSpec, scenario
from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech


def degraded_params(
    base: BehavioralLinkParams,
    rate_factor: float,
    latency_penalty: int,
) -> BehavioralLinkParams:
    """Behavioural parameters of a marginal link: slower and later."""
    return BehavioralLinkParams(
        kind=f"{base.kind}-degraded",
        latency_cycles=base.latency_cycles + latency_penalty,
        rate_flits_per_cycle=max(base.rate_flits_per_cycle * rate_factor,
                                 1e-3),
        capacity_flits=base.capacity_flits,
        wire_count=base.wire_count,
        serial_ceiling_mflits=base.serial_ceiling_mflits * rate_factor,
    )


def pick_faulty_links(
    topology: Topology,
    n_faults: int,
    fault_seed: int,
) -> Set[Tuple[Tuple[int, int], object]]:
    """Deterministically sample ``n_faults`` directed links to degrade."""
    all_links = [(src, port) for src, port, _dst in topology.links()]
    rng = random.Random(fault_seed)
    count = min(n_faults, len(all_links))
    return set(rng.sample(all_links, count)) if count else set()


def pick_faulty_paths(
    mesh: MeshDesign,
    n_faults: int,
    fault_seed: int,
) -> List[str]:
    """The seeded fault sites as instance paths (``node[y][x].east``)."""
    faulty = pick_faulty_links(mesh.topology, n_faults, fault_seed)
    return sorted(mesh.link_path(src, port) for src, port in faulty)


def parse_fault_paths(raw: str) -> List[str]:
    """Split a comma-separated ``fault_paths`` parameter value."""
    return [p.strip() for p in str(raw).split(",") if p.strip()]


def build_design(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    n_faults: int = 3,
    rate_factor: float = 0.5,
    latency_penalty: int = 4,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    fault_seed: int = 13,
    fault_paths: str = "",
    **_ignored,
) -> Design:
    """The campaign's structural view: a mesh tree with the degraded
    links attached at their instance paths (the ``repro inspect
    fault-injection --tree`` payload and the scenario's own wiring)."""
    if not (0.0 < rate_factor <= 1.0):
        raise ValueError(
            f"rate_factor must be in (0, 1], got {rate_factor}"
        )
    if latency_penalty < 0:
        raise ValueError(
            f"latency_penalty must be >= 0, got {latency_penalty}"
        )
    tech = resolve_tech(tech)
    mesh = MeshDesign(Topology(mesh_size, mesh_size))
    base = derive_link_params(tech, kind, freq_mhz)
    slow = degraded_params(base, rate_factor, latency_penalty)
    paths = (
        parse_fault_paths(fault_paths)
        if fault_paths
        else pick_faulty_paths(mesh, n_faults, fault_seed)
    )
    for path in paths:
        mesh.degrade(path, slow)
    mesh.base_params = base
    mesh.fault_paths = paths
    return Design(mesh)


@scenario(
    "fault-injection",
    description=(
        "Fault-injection campaign: seeded set of degraded links "
        "(slower, later); adaptive routing steers around the damage"
    ),
    tags=("noc", "fault", "extension", "sweep"),
    params=(
        ParamSpec(
            "mesh_size", int, 4,
            help="mesh is mesh_size x mesh_size switches",
            choices=(2, 3, 4, 5, 6, 7, 8),
        ),
        ParamSpec(
            "injection_rate", float, 0.10,
            help="offered load, flits/node/cycle",
            sweep=(0.05, 0.10, 0.15),
        ),
        ParamSpec(
            "n_faults", int, 3,
            help="number of degraded directed links",
            sweep=(0, 1, 3, 6),
        ),
        ParamSpec(
            "rate_factor", float, 0.5,
            help="sustained-rate multiplier of a degraded link (0, 1]",
        ),
        ParamSpec(
            "latency_penalty", int, 4,
            help="extra delivery latency of a degraded link, cycles",
        ),
        ParamSpec(
            "routing", str, "west_first",
            help="routing mode (west_first adapts around slow links)",
            choices=("xy", "west_first"),
        ),
        ParamSpec(
            "kind", str, "I3",
            help="link implementation under study",
            choices=("I1", "I2", "I3"),
        ),
        ParamSpec("freq_mhz", float, 300.0, help="switch clock"),
        ParamSpec("cycles", int, 800, help="traffic cycles before drain"),
        ParamSpec("seed", int, 2008),
        ParamSpec("fault_seed", int, 13,
                  help="seed of the fault-site sampler"),
        ParamSpec(
            "fault_paths", str, "",
            help="explicit fault sites as comma-separated instance "
                 "paths (node[y][x].east,...); overrides the seeded "
                 "sampler",
        ),
    ),
    fast_params={"cycles": 200},
    design=build_design,
)
def run(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.10,
    n_faults: int = 3,
    rate_factor: float = 0.5,
    latency_penalty: int = 4,
    routing: str = "west_first",
    kind: str = "I3",
    freq_mhz: float = 300.0,
    cycles: int = 800,
    seed: int = 2008,
    fault_seed: int = 13,
    fault_paths: str = "",
) -> ExperimentResult:
    # the structural view owns the fault sites (build_design resolves
    # tech and validates rate_factor/latency_penalty for both entry
    # points): links are addressed by
    # instance path and the kernel hook reads the tree
    design = build_design(
        tech=tech, mesh_size=mesh_size, n_faults=n_faults,
        rate_factor=rate_factor, latency_penalty=latency_penalty,
        kind=kind, freq_mhz=freq_mhz, fault_seed=fault_seed,
        fault_paths=fault_paths,
    )
    mesh = design.top
    topology = mesh.topology
    base = mesh.base_params
    faulty = mesh.fault_paths
    link_params_for = mesh.link_params_for()

    common = dict(
        injection_rate=injection_rate,
        cycles=cycles,
        seed=seed,
        routing=routing,
    )
    healthy = run_mesh_point(topology, base, **common)
    damaged = run_mesh_point(
        topology, base, link_params_for=link_params_for, **common
    )

    headers = (
        "mesh", "link", "routing", "faulty links",
        "offered (flit/node/cyc)", "accepted", "mean lat (cyc)",
        "p99 lat (cyc)",
    )
    rows: List[Sequence[object]] = []
    for label, point, count in (
        ("healthy", healthy, 0),
        ("damaged", damaged, len(faulty)),
    ):
        rows.append([
            f"{mesh_size}x{mesh_size}",
            kind if label == "healthy" else f"{kind} ({label})",
            routing,
            count,
            injection_rate,
            f"{point['throughput']:.4f}",
            f"{point['mean_latency']:.1f}",
            f"{point['p99_latency']:.0f}",
        ])
    checks = [
        Check(
            "flit conservation on the damaged mesh",
            damaged["flits_ejected"],
            max(damaged["flits_injected"], 1),
            0.0,
        ),
        Check(
            "traffic delivered through the damage (packets >= 1)",
            damaged["packets_ejected"],
            1.0,
            0.0,
            mode="at_least",
        ),
        Check(
            "healthy mesh conserves flits too",
            healthy["flits_ejected"],
            max(healthy["flits_injected"], 1),
            0.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="Fault-injection campaign",
        description=(
            f"{mesh_size}x{mesh_size} mesh, {kind} links, "
            f"{len(faulty)} degraded link(s) "
            f"(rate x{rate_factor:g}, +{latency_penalty} cycles), "
            f"{routing} routing at {injection_rate} flit/node/cycle"
            + (f"; fault sites: {', '.join(faulty)}" if faulty else "")
        ),
        headers=headers,
        rows=rows,
        checks=checks,
    )
