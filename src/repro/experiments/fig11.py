"""Fig 11 — Wiring area vs. wire length.

AREA = L × (N·MetW + (N+1)·MetG) with the METAL6 geometry; the paper
reads ≈30 000 µm² for I1 and ≈7 500 µm² for the serial links at
L = 1000 µm.  The exact equation gives 29 260 / 7 660 — we check against
those with the paper's round-number quotes at a 5 % tolerance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tech.technology import Technology
from ..analysis.area import fig11_series, wire_area_um2
from ..runner.registry import scenario
from .common import Check, ExperimentResult, resolve_tech

PAPER_I1_AREA_AT_1000UM = 30_000.0
PAPER_I3_AREA_AT_1000UM = 7_500.0


@scenario(
    "fig11",
    description="Fig 11 — wiring area vs wire length, I1 vs I2/I3",
    tags=("paper", "figure", "analytical"),
)
def run(
    tech: Optional[Technology] = None,
    lengths_um: Sequence[float] = tuple(range(0, 3001, 250)),
) -> ExperimentResult:
    tech = resolve_tech(tech)
    series = fig11_series(tech, lengths_um)

    headers = ["wire length (um)"] + [f"{label} (um^2)" for label in series]
    rows = []
    for i, length in enumerate(lengths_um):
        row: list[object] = [length]
        for label in series:
            row.append(round(series[label][i][1]))
        rows.append(row)

    checks = [
        Check(
            "I1 wiring area @1000 um",
            wire_area_um2(32, 1000.0, tech),
            PAPER_I1_AREA_AT_1000UM,
            0.05,
        ),
        Check(
            "I2/I3 wiring area @1000 um",
            wire_area_um2(8, 1000.0, tech),
            PAPER_I3_AREA_AT_1000UM,
            0.05,
        ),
        Check(
            "area ratio I1/I3",
            wire_area_um2(32, 1000.0, tech) / wire_area_um2(8, 1000.0, tech),
            PAPER_I1_AREA_AT_1000UM / PAPER_I3_AREA_AT_1000UM,
            0.05,
        ),
    ]
    return ExperimentResult(
        experiment_id="Fig 11",
        description="Wiring area vs. wire length (METAL6, ST 0.12 um)",
        headers=headers,
        rows=rows,
        checks=checks,
    )
