"""Table 2 — Module-level area breakdown of implementation I2.

Paper values (µm²): synch→asynch 9408, serializer 869, wire buffer
294 ×4, de-serializer 1030, asynch→synch 6710, total 19 193.
"""

from __future__ import annotations

from typing import Optional

from ..tech.technology import Technology
from ..analysis.area import table2
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

PAPER_MODULES = {
    "Synch to Asynch interface": (9408.0, 1),
    "Asynch 32 to 8 serializer": (869.0, 1),
    "Asynch 8 wire buffer": (294.0, 4),
    "Asynch 8 to 32 de-serializer": (1030.0, 1),
    "Asynch to Synch interface": (6710.0, 1),
}
PAPER_TOTAL = 19_193.0


@scenario(
    "table2",
    description="Table 2 — area breakdown of the proposed link",
    tags=("paper", "table", "analytical"),
    params=(ParamSpec("n_buffers", int, 4),),
)
def run(tech: Optional[Technology] = None, n_buffers: int = 4) -> ExperimentResult:
    tech = resolve_tech(tech)
    breakdown = table2(tech, n_buffers)

    rows = [
        [name, round(area), qty] for name, area, qty in breakdown.rows()
    ]
    rows.append(["Total", round(breakdown.total_um2), ""])

    checks = [
        Check(f"area of {name}", breakdown.modules[name], paper_area, 0.001)
        for name, (paper_area, _qty) in PAPER_MODULES.items()
    ]
    checks.append(Check("I2 total area", breakdown.total_um2, PAPER_TOTAL, 0.001))
    return ExperimentResult(
        experiment_id="Table 2",
        description="Breakdown of implementation I2",
        headers=("Module", "Area (um^2)", "Qty."),
        rows=rows,
        checks=checks,
    )
