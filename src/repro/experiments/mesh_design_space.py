"""Mesh design-space point — system-level payoff of the serialized link.

The paper evaluates one point-to-point link; the question its
introduction poses is what happens to a *whole NoC* when every
inter-switch connection is replaced by the serialized asynchronous
design.  This scenario answers it for one operating point — mesh size ×
injection rate × link kind — and the sweep engine expands the declared
axes into the full design space (``python -m repro sweep
mesh-design-space``): 2×2 … 8×8 meshes at low/nominal/high load.

Each point runs seeded uniform traffic on a ``mesh_size`` ×
``mesh_size`` mesh whose links all use the behavioural parameters of
the chosen implementation (I1 synchronous baseline, I2 per-transfer
ack, I3 per-word ack), drains every in-flight flit, and reports
accepted throughput, packet latency, total wiring and the Fig 12/13
link-power estimate.  The checks are invariants, not paper numbers:
the run must conserve flits and actually deliver traffic.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.power import link_power_uw
from ..link.behavioral import derive_link_params
from ..noc import Topology, run_mesh_point
from ..runner.registry import ParamSpec, scenario
from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech

LINK_KINDS = ("I1", "I2", "I3")


@scenario(
    "mesh-design-space",
    description=(
        "Mesh NoC design-space point: size x injection rate x link kind "
        "(throughput, latency, wires, link power)"
    ),
    tags=("noc", "sweep", "extension"),
    params=(
        ParamSpec(
            "mesh_size", int, 4,
            help="mesh is mesh_size x mesh_size switches",
            choices=(2, 3, 4, 5, 6, 7, 8),
            sweep=(2, 3, 4, 5, 6, 7, 8),
        ),
        ParamSpec(
            "injection_rate", float, 0.15,
            help="offered load, flits/node/cycle",
            sweep=(0.05, 0.15, 0.25),
        ),
        ParamSpec(
            "kind", str, "I3",
            help="link implementation under study",
            choices=LINK_KINDS,
        ),
        ParamSpec("freq_mhz", float, 300.0, help="switch clock"),
        ParamSpec("cycles", int, 800, help="traffic cycles before drain"),
        ParamSpec("pattern", str, "uniform",
                  choices=("uniform", "transpose", "bit_complement",
                           "hotspot", "neighbor")),
        ParamSpec("seed", int, 2008),
    ),
)
def run(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.15,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    cycles: int = 800,
    pattern: str = "uniform",
    seed: int = 2008,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    topology = Topology(mesh_size, mesh_size)
    params = derive_link_params(tech, kind, freq_mhz)
    point = run_mesh_point(
        topology,
        params,
        injection_rate=injection_rate,
        cycles=cycles,
        pattern=pattern,
        seed=seed,
    )
    link_uw = link_power_uw(tech, kind, 4, freq_mhz, usage=0.5)
    mesh_power_mw = link_uw * topology.n_directed_links / 1000.0

    headers = (
        "mesh", "link", "offered (flit/node/cyc)", "accepted",
        "mean lat (cyc)", "p99 lat (cyc)", "total wires",
        "est. link power (mW)",
    )
    rows = [[
        f"{mesh_size}x{mesh_size}",
        kind,
        injection_rate,
        f"{point['throughput']:.4f}",
        f"{point['mean_latency']:.1f}",
        f"{point['p99_latency']:.0f}",
        point["total_wires"],
        f"{mesh_power_mw:.1f}",
    ]]

    checks = [
        # a drained network must conserve every injected flit
        Check(
            "flit conservation (ejected vs injected)",
            point["flits_ejected"],
            max(point["flits_injected"], 1),
            0.0,
        ),
        Check(
            "traffic delivered (packets ejected >= 1)",
            point["packets_ejected"],
            1.0,
            0.0,
            mode="at_least",
        ),
    ]
    return ExperimentResult(
        experiment_id="Mesh design space",
        description=(
            f"{mesh_size}x{mesh_size} mesh, {kind} links, {pattern} "
            f"traffic at {injection_rate} flit/node/cycle, "
            f"{freq_mhz:.0f} MHz"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
    )
