"""Traffic-pattern workloads: hotspot, transpose, bit-complement.

The ``noc.traffic`` generators have supported these standard synthetic
patterns since the seed; these scenarios finally expose them to the
sweep engine, each sweeping injection rate so ``python -m repro sweep
traffic-hotspot`` (etc.) traces an accepted-throughput/latency curve
under the chosen link implementation.

The patterns stress the mesh differently — and therefore stress the
serialized links differently:

* **hotspot** — a fraction of all traffic converges on one node, the
  classic congestion collapse probe;
* **transpose** — (x, y) → (y, x): long diagonal paths, adversarial
  for dimension-ordered (XY) routing;
* **bit-complement** — (x, y) → (cols-1-x, rows-1-y): every packet
  crosses the bisection, the worst case for link bandwidth.

Checks are invariants (flit conservation, traffic actually delivered),
not paper numbers: the paper evaluates a single link, these are
extension studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.power import link_power_uw
from ..link.behavioral import derive_link_params
from ..noc import Topology, run_mesh_point
from ..runner.registry import ParamSpec, scenario
from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech

#: load axis shared by the three pattern sweeps
_RATE_AXIS = (0.05, 0.10, 0.15, 0.20, 0.25)


def _pattern_params(extra: Sequence[ParamSpec] = ()) -> tuple:
    return (
        ParamSpec(
            "mesh_size", int, 4,
            help="mesh is mesh_size x mesh_size switches",
            choices=(2, 3, 4, 5, 6, 7, 8),
        ),
        ParamSpec(
            "injection_rate", float, 0.15,
            help="offered load, flits/node/cycle",
            sweep=_RATE_AXIS,
        ),
        ParamSpec(
            "kind", str, "I3",
            help="link implementation under study",
            choices=("I1", "I2", "I3"),
        ),
        ParamSpec("freq_mhz", float, 300.0, help="switch clock"),
        ParamSpec("cycles", int, 800, help="traffic cycles before drain"),
        ParamSpec("seed", int, 2008),
    ) + tuple(extra)


def _run_pattern(
    tech: Optional[Technology],
    pattern: str,
    title: str,
    mesh_size: int,
    injection_rate: float,
    kind: str,
    freq_mhz: float,
    cycles: int,
    seed: int,
    hotspot_fraction: float = 0.5,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    topology = Topology(mesh_size, mesh_size)
    params = derive_link_params(tech, kind, freq_mhz)
    point = run_mesh_point(
        topology,
        params,
        injection_rate=injection_rate,
        cycles=cycles,
        pattern=pattern,
        seed=seed,
        hotspot_fraction=hotspot_fraction,
    )
    link_uw = link_power_uw(tech, kind, 4, freq_mhz, usage=0.5)
    mesh_power_mw = link_uw * topology.n_directed_links / 1000.0

    headers = (
        "mesh", "link", "pattern", "offered (flit/node/cyc)", "accepted",
        "mean lat (cyc)", "p99 lat (cyc)", "est. link power (mW)",
    )
    rows: List[Sequence[object]] = [[
        f"{mesh_size}x{mesh_size}",
        kind,
        pattern,
        injection_rate,
        f"{point['throughput']:.4f}",
        f"{point['mean_latency']:.1f}",
        f"{point['p99_latency']:.0f}",
        f"{mesh_power_mw:.1f}",
    ]]
    checks = [
        Check(
            "flit conservation (ejected vs injected)",
            point["flits_ejected"],
            max(point["flits_injected"], 1),
            0.0,
        ),
        Check(
            "traffic delivered (packets ejected >= 1)",
            point["packets_ejected"],
            1.0,
            0.0,
            mode="at_least",
        ),
    ]
    return ExperimentResult(
        experiment_id=title,
        description=(
            f"{mesh_size}x{mesh_size} mesh, {kind} links, {pattern} "
            f"traffic at {injection_rate} flit/node/cycle, "
            f"{freq_mhz:.0f} MHz"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
    )


@scenario(
    "traffic-hotspot",
    description=(
        "Hotspot traffic sweep: a fraction of all packets converge on "
        "the mesh centre (congestion probe)"
    ),
    tags=("noc", "sweep", "traffic", "extension"),
    params=_pattern_params(extra=(
        ParamSpec(
            "hotspot_fraction", float, 0.5,
            help="fraction of traffic aimed at the hotspot node",
        ),
    )),
    fast_params={"cycles": 200},
)
def run_hotspot(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.15,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    cycles: int = 800,
    seed: int = 2008,
    hotspot_fraction: float = 0.5,
) -> ExperimentResult:
    return _run_pattern(
        tech, "hotspot", "Hotspot traffic",
        mesh_size, injection_rate, kind, freq_mhz, cycles, seed,
        hotspot_fraction=hotspot_fraction,
    )


@scenario(
    "traffic-transpose",
    description=(
        "Transpose traffic sweep: (x, y) sends to (y, x) — adversarial "
        "for XY routing"
    ),
    tags=("noc", "sweep", "traffic", "extension"),
    params=_pattern_params(),
    fast_params={"cycles": 200},
)
def run_transpose(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.15,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    cycles: int = 800,
    seed: int = 2008,
) -> ExperimentResult:
    return _run_pattern(
        tech, "transpose", "Transpose traffic",
        mesh_size, injection_rate, kind, freq_mhz, cycles, seed,
    )


@scenario(
    "traffic-bit-complement",
    description=(
        "Bit-complement traffic sweep: (x, y) sends to "
        "(cols-1-x, rows-1-y) — every packet crosses the bisection"
    ),
    tags=("noc", "sweep", "traffic", "extension"),
    params=_pattern_params(),
    fast_params={"cycles": 200},
)
def run_bit_complement(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.15,
    kind: str = "I3",
    freq_mhz: float = 300.0,
    cycles: int = 800,
    seed: int = 2008,
) -> ExperimentResult:
    return _run_pattern(
        tech, "bit_complement", "Bit-complement traffic",
        mesh_size, injection_rate, kind, freq_mhz, cycles, seed,
    )
