"""Wire-length study: the Tp term the paper's worked example zeroes out.

Section V's equations carry a wire-propagation term Tp per segment, but
the published example evaluates them at Tp = 0 (gate-level simulation).
This experiment puts the term back: for increasing inter-buffer wire
lengths it evaluates both analytic equations *and* re-runs the
gate-level links with the matching transport delays, checking that the
simulated ceilings track the equations — the strongest internal
consistency check this reproduction has.

It also reproduces the paper's remark that "additional buffers can be
inserted to maintain performance if needed over long wire lengths": for
a fixed total wire length, more (I3) repeater stations shorten each
segment without adding handshake cost, while more (I2) latching buffers
add a full controller delay per slice.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..tech.technology import Technology
from ..analysis.timing import per_transfer_cycle_delay, per_word_cycle_delay
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech
from .throughput import simulate_ceiling_mflits


@scenario(
    "wirelength",
    description="Throughput vs wire length (segment-delay sweep)",
    tags=("paper", "section-v", "simulated"),
    params=(
        ParamSpec("n_buffers", int, 4),
        ParamSpec("simulate", bool, True,
                  help="cross-check against gate-level runs"),
        ParamSpec("n_flits", int, 16),
    ),
    fast_params={"simulate": False},
)
def run(
    tech: Optional[Technology] = None,
    segment_delays_ps: Sequence[int] = (0, 50, 150, 300),
    n_buffers: int = 4,
    simulate: bool = True,
    n_flits: int = 16,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    rows: list[list[object]] = []
    checks: list[Check] = []
    for tp in segment_delays_ps:
        timings = replace(tech.handshake, t_p_per_segment=tp)
        tech_tp = tech.with_handshake(timings)
        i2 = per_transfer_cycle_delay(timings, n_buffers=n_buffers)
        i3 = per_word_cycle_delay(timings, n_buffers=n_buffers)
        length_um = tp / tech.wire_delay_ps_per_mm * 1000.0
        row: list[object] = [
            tp,
            f"{length_um:.0f}",
            f"{i2.mflits:.1f}",
            f"{i3.mflits:.1f}",
        ]
        if simulate:
            sim_i2 = simulate_ceiling_mflits("I2", tech_tp, n_buffers,
                                             n_flits=n_flits)
            sim_i3 = simulate_ceiling_mflits("I3", tech_tp, n_buffers,
                                             n_flits=n_flits)
            row.extend([f"{sim_i2:.1f}", f"{sim_i3:.1f}"])
            checks.append(
                Check(f"I2 gate-level vs eqn @Tp={tp} ps", sim_i2,
                      i2.mflits, 0.08)
            )
            checks.append(
                Check(f"I3 gate-level vs eqn @Tp={tp} ps", sim_i3,
                      i3.mflits, 0.08)
            )
        rows.append(row)

    headers = ["Tp/segment (ps)", "segment length (um)",
               "I2 eqn (MF/s)", "I3 eqn (MF/s)"]
    if simulate:
        headers += ["I2 sim (MF/s)", "I3 sim (MF/s)"]

    # shape check: I2 degrades faster with wire length than I3
    short = per_transfer_cycle_delay(
        replace(tech.handshake, t_p_per_segment=0), n_buffers=n_buffers
    )
    long = per_transfer_cycle_delay(
        replace(tech.handshake, t_p_per_segment=max(segment_delays_ps)),
        n_buffers=n_buffers,
    )
    i3_short = per_word_cycle_delay(
        replace(tech.handshake, t_p_per_segment=0), n_buffers=n_buffers
    )
    i3_long = per_word_cycle_delay(
        replace(tech.handshake, t_p_per_segment=max(segment_delays_ps)),
        n_buffers=n_buffers,
    )
    i2_degradation = short.mflits / long.mflits
    i3_degradation = i3_short.mflits / i3_long.mflits
    checks.append(
        Check(
            "I2 degrades faster with wire length (degradation ratio)",
            i2_degradation / i3_degradation,
            1.0,
            0.0,
            mode="at_least",
        )
    )
    return ExperimentResult(
        experiment_id="Wire length",
        description="Throughput vs inter-buffer wire delay (Tp restored)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=(
            "Per-transfer acknowledgement pays every wire segment four "
            "times per flit (once per slice); the word-level scheme pays "
            "the full wire round trip once per flit."
        ),
    )
