"""Fig 12 — Power vs. number of buffers at a 100 MHz switch clock.

Paper points (50 % link usage, worst-case data): I1 grows 372 → 1498 µW
from 2 to 8 buffers (+300 %); I2 589 → 712 µW (+20 %); I3 623 → 637 µW
(+2 %).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tech.technology import Technology
from ..analysis.power import buffer_sweep, link_power_uw
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

FREQ_MHZ = 100.0
PAPER_POINTS = {
    ("I1", 2): 372.0,
    ("I1", 8): 1498.0,
    ("I2", 2): 589.0,
    ("I2", 8): 712.0,
    ("I3", 2): 623.0,
    ("I3", 8): 637.0,
}


@scenario(
    "fig12",
    description="Fig 12 — link power vs buffer count at 100 MHz",
    tags=("paper", "figure", "analytical"),
    params=(
        ParamSpec("freq_mhz", float, FREQ_MHZ, help="switch clock"),
        ParamSpec("usage", float, 0.5, help="link utilisation"),
    ),
)
def run(
    tech: Optional[Technology] = None,
    buffer_counts: Sequence[int] = (2, 4, 6, 8),
    freq_mhz: float = FREQ_MHZ,
    usage: float = 0.5,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    curves = buffer_sweep(tech, freq_mhz, buffer_counts, usage)

    headers = ["buffers"] + [f"{label} (uW)" for label in curves]
    rows = []
    for i, n in enumerate(buffer_counts):
        row: list[object] = [n]
        for label in curves:
            row.append(round(curves[label][i][1], 1))
        rows.append(row)

    checks = [
        Check(
            f"{kind} power @{n} buffers, {freq_mhz:.0f} MHz",
            link_power_uw(tech, kind, n, freq_mhz, usage),
            paper_uw,
            0.02,
        )
        for (kind, n), paper_uw in PAPER_POINTS.items()
    ]
    # growth-shape checks from the running text
    i1_growth = (
        link_power_uw(tech, "I1", 8, freq_mhz, usage)
        / link_power_uw(tech, "I1", 2, freq_mhz, usage)
        - 1.0
    )
    i2_growth = (
        link_power_uw(tech, "I2", 8, freq_mhz, usage)
        / link_power_uw(tech, "I2", 2, freq_mhz, usage)
        - 1.0
    )
    i3_growth = (
        link_power_uw(tech, "I3", 8, freq_mhz, usage)
        / link_power_uw(tech, "I3", 2, freq_mhz, usage)
        - 1.0
    )
    checks.extend(
        [
            Check("I1 growth 2→8 buffers", 100 * i1_growth, 300.0, 0.05),
            Check("I2 growth 2→8 buffers", 100 * i2_growth, 20.0, 0.10),
            Check("I3 growth 2→8 buffers", 100 * i3_growth, 2.0, 0.15),
        ]
    )
    return ExperimentResult(
        experiment_id="Fig 12",
        description=f"Power vs. buffers @ {freq_mhz:.0f} MHz, {usage:.0%} usage",
        headers=headers,
        rows=rows,
        checks=checks,
    )
