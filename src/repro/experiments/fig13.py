"""Fig 13 — Power vs. number of buffers at a 300 MHz switch clock.

Paper points: I1 reaches 3229 µW at 8 buffers (up from 1498 µW at
100 MHz); I3 reaches 1110 µW — the headline 65 % power reduction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tech.technology import Technology
from ..analysis.power import buffer_sweep, link_power_uw, power_saving_percent
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

FREQ_MHZ = 300.0
PAPER_POINTS = {
    ("I1", 8): 3229.0,
    ("I3", 8): 1110.0,
}
PAPER_SAVING_PERCENT = 65.0


@scenario(
    "fig13",
    description="Fig 13 — link power vs buffer count at 300 MHz",
    tags=("paper", "figure", "analytical"),
    params=(
        ParamSpec("freq_mhz", float, FREQ_MHZ, help="switch clock"),
        ParamSpec("usage", float, 0.5, help="link utilisation"),
    ),
)
def run(
    tech: Optional[Technology] = None,
    buffer_counts: Sequence[int] = (2, 4, 6, 8),
    freq_mhz: float = FREQ_MHZ,
    usage: float = 0.5,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    curves = buffer_sweep(tech, freq_mhz, buffer_counts, usage)

    headers = ["buffers"] + [f"{label} (uW)" for label in curves]
    rows = []
    for i, n in enumerate(buffer_counts):
        row: list[object] = [n]
        for label in curves:
            row.append(round(curves[label][i][1], 1))
        rows.append(row)

    checks = [
        Check(
            f"{kind} power @{n} buffers, {freq_mhz:.0f} MHz",
            link_power_uw(tech, kind, n, freq_mhz, usage),
            paper_uw,
            0.02,
        )
        for (kind, n), paper_uw in PAPER_POINTS.items()
    ]
    checks.append(
        Check(
            "I3 saving over I1 @8 buffers (%)",
            power_saving_percent(tech, 8, freq_mhz, usage),
            PAPER_SAVING_PERCENT,
            0.03,
        )
    )
    return ExperimentResult(
        experiment_id="Fig 13",
        description=f"Power vs. buffers @ {freq_mhz:.0f} MHz, {usage:.0%} usage",
        headers=headers,
        rows=rows,
        checks=checks,
    )
