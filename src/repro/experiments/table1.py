"""Table 1 — Circuit-area overhead of the three implementations.

Paper: I1 15 864 µm², I2 19 193 µm², I3 18 396 µm² — roughly a 20 %
overhead for the asynchronous links, traded against the 75 % wire
reduction.
"""

from __future__ import annotations

from typing import Optional

from ..tech.technology import Technology
from ..analysis.area import table1
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

PAPER_AREAS = {
    "Synchronous (I1)": 15_864.0,
    "Asynchronous per-transfer ack. (I2)": 19_193.0,
    "Asynchronous per-word ack. (I3)": 18_396.0,
}


@scenario(
    "table1",
    description="Table 1 — cell area of the three link implementations",
    tags=("paper", "table", "analytical"),
    params=(ParamSpec("n_buffers", int, 4),),
)
def run(tech: Optional[Technology] = None, n_buffers: int = 4) -> ExperimentResult:
    tech = resolve_tech(tech)
    areas = table1(tech, n_buffers)

    rows = [[name, round(area)] for name, area in areas.items()]
    checks = [
        Check(f"area of {name}", areas[name], paper, 0.001)
        for name, paper in PAPER_AREAS.items()
    ]
    overhead = (
        areas["Asynchronous per-transfer ack. (I2)"]
        / areas["Synchronous (I1)"]
        - 1.0
    )
    checks.append(Check("I2 area overhead (%)", 100 * overhead, 20.0, 0.05))
    return ExperimentResult(
        experiment_id="Table 1",
        description="Area overhead of the synchronous and proposed links",
        headers=("Implementation", "Area (um^2)"),
        rows=rows,
        checks=checks,
    )
