"""Shared experiment scaffolding.

Every experiment module exposes ``run(tech=None, **options)`` returning
an :class:`ExperimentResult`; the benchmark harness prints
``result.render()`` (the same rows/series the paper reports) and the
tests assert ``result.checks`` — the paper-vs-measured comparisons with
their tolerances.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..tech.technology import Technology
from ..tech.st012 import st012
from ..analysis.report import format_table, relative_error


@dataclass
class Check:
    """One paper-vs-measured comparison.

    ``mode`` selects the acceptance rule: ``"two_sided"`` (default)
    requires |error| ≤ tolerance; ``"at_least"`` requires the measured
    value to be no more than ``tolerance`` *below* the reference (used
    for claims of the form "the extension is at least this much
    faster" where overshooting is success, not failure).
    """

    name: str
    measured: float
    paper: float
    tolerance: float  # relative
    mode: str = "two_sided"

    def __post_init__(self) -> None:
        if self.mode not in ("two_sided", "at_least"):
            raise ValueError(f"unknown check mode {self.mode!r}")

    @property
    def error(self) -> float:
        return relative_error(self.measured, self.paper)

    @property
    def ok(self) -> bool:
        if self.mode == "at_least":
            return self.error >= -self.tolerance
        return abs(self.error) <= self.tolerance

    def row(self) -> Sequence[object]:
        return (
            self.name,
            f"{self.measured:.4g}",
            f"{self.paper:.4g}",
            f"{100 * self.error:+.1f}%",
            "ok" if self.ok else "FAIL",
        )


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    checks: List[Check] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        parts = [
            format_table(
                self.headers,
                self.rows,
                title=f"{self.experiment_id}: {self.description}",
            )
        ]
        if self.checks:
            parts.append("")
            parts.append(
                format_table(
                    ("check", "measured", "paper", "error", "status"),
                    [c.row() for c in self.checks],
                    title="paper-vs-measured",
                )
            )
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    @property
    def all_ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[Check]:
        return [c for c in self.checks if not c.ok]

    def to_csv(self, destination: Union[str, Path, None] = None) -> str:
        """The result rows as CSV (for plotting outside this repo).

        Writes to ``destination`` if given; always returns the CSV text.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(["" if cell is None else cell for cell in row])
        text = buf.getvalue()
        if destination is not None:
            Path(destination).write_text(text, encoding="utf-8")
        return text

    def checks_csv(self) -> str:
        """The paper-vs-measured checks as CSV."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(("check", "measured", "paper", "error", "status"))
        for check in self.checks:
            writer.writerow(check.row())
        return buf.getvalue()


def resolve_tech(tech: Optional[Technology]) -> Technology:
    """Default to the calibrated ST 0.12 µm technology."""
    return tech if tech is not None else st012()
