"""Fig 14 — Average power breakdown at 50 % link usage (4 buffers).

The paper's bar chart splits each implementation into serializer/
de-serializer, buffers, and the synch/asynch conversion interfaces:

* conversion circuits dominate the asynchronous links (they contain
  the clocked FIFO halves);
* I2's latching wire buffers draw 82 µW against 9 µW for I3's inverter
  repeaters;
* the shift-register de-serializer (I3) draws more than the
  de-multiplexer one (I2) because all four registers clock on every
  slice.

Alongside the analytical µW bars, the experiment optionally measures
per-component *switched activity* on the gate-level links to confirm the
same ordering emerges from simulation.
"""

from __future__ import annotations

from typing import Optional

from ..tech.technology import Technology
from ..analysis.power import measure_link_activity, power_breakdown
from ..runner.registry import ParamSpec, scenario
from .common import Check, ExperimentResult, resolve_tech

FREQ_MHZ = 100.0
N_BUFFERS = 4  # "Note four buffers were used in each link" (Fig 9)
PAPER_I2_BUFFER_UW = 82.0
PAPER_I3_BUFFER_UW = 9.0


@scenario(
    "fig14",
    description="Fig 14 — power breakdown by link component",
    tags=("paper", "figure", "simulated"),
    params=(
        ParamSpec("usage", float, 0.5, help="link utilisation"),
        ParamSpec("with_activity", bool, True,
                  help="calibrate with gate-level activity counts"),
        ParamSpec("activity_flits", int, 24),
    ),
    fast_params={"with_activity": False},
)
def run(
    tech: Optional[Technology] = None,
    usage: float = 0.5,
    with_activity: bool = False,
    activity_flits: int = 24,
) -> ExperimentResult:
    tech = resolve_tech(tech)
    kinds = ("I1", "I2", "I3")
    breakdowns = {
        kind: power_breakdown(tech, kind, N_BUFFERS, FREQ_MHZ, usage)
        for kind in kinds
    }
    categories = list(next(iter(breakdowns.values())))

    headers = ["implementation"] + [f"{c} (uW)" for c in categories] + [
        "total (uW)"
    ]
    rows = []
    for kind in kinds:
        bars = breakdowns[kind]
        rows.append(
            [kind]
            + [round(bars[c], 1) for c in categories]
            + [round(sum(bars.values()), 1)]
        )

    checks = [
        Check("I2 buffer power (uW)", breakdowns["I2"]["Buffers"],
              PAPER_I2_BUFFER_UW, 0.02),
        Check("I3 buffer power (uW)", breakdowns["I3"]["Buffers"],
              PAPER_I3_BUFFER_UW, 0.05),
        # qualitative orderings from the running text, as ratio checks
        Check(
            "conversion dominates I3 (conv / serdes)",
            breakdowns["I3"]["Asynch Synch Conv."]
            / max(breakdowns["I3"]["Ser/Des"], 1e-9),
            2.29,  # 430/188 from the calibration
            0.10,
        ),
    ]

    notes_lines = [
        "Conversion interfaces dominate I2/I3; I2/I3 totals are similar; "
        "I3's shift-register de-serializer outdraws I2's mux-based one.",
    ]

    if with_activity:
        activity_rows = []
        for kind in kinds:
            report = measure_link_activity(
                kind, N_BUFFERS, FREQ_MHZ, n_flits=activity_flits, tech=tech
            )
            activity_rows.append(
                f"  {kind}: "
                + ", ".join(
                    f"{group}={report.per_flit(group):.0f}"
                    for group in sorted(report.switched_by_group)
                )
            )
        notes_lines.append(
            "gate-level switched activity (cap-weighted transitions/flit):"
        )
        notes_lines.extend(activity_rows)

    return ExperimentResult(
        experiment_id="Fig 14",
        description=(
            f"Power breakdown @ {usage:.0%} usage, {FREQ_MHZ:.0f} MHz, "
            f"{N_BUFFERS} buffers"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes="\n".join(notes_lines),
    )
