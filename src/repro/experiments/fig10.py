"""Fig 10 — Bandwidth vs. number of wires.

The synchronous link needs ``32·B/f`` wires for bandwidth B at clock f
(96 wires for 300 MFlit/s at 100 MHz, 32 at 300 MHz); the proposed
asynchronous serial link holds at 8 wires for every bandwidth up to its
serial ceiling (~304 MFlit/s analytically; the paper quotes ~311).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tech.technology import Technology
from ..analysis.wires import fig10_series, sync_wires_needed, async_wires_needed
from ..runner.registry import scenario
from .common import Check, ExperimentResult, resolve_tech

#: anchor points the paper states in the running text
PAPER_POINTS = {
    ("I1", 300.0, 300.0): 32,   # 300 MFlit/s at 300 MHz → 32 wires
    ("I1", 100.0, 300.0): 96,   # 300 MFlit/s at 100 MHz → 96 wires
    ("I3", 300.0, 300.0): 8,    # proposed link: always 8 data wires
}

PAPER_WIRE_REDUCTION_PERCENT = 75.0


@scenario(
    "fig10",
    description="Fig 10 — wires needed vs offered bandwidth, I1 vs I3",
    tags=("paper", "figure", "analytical"),
)
def run(
    tech: Optional[Technology] = None,
    bandwidths: Sequence[float] = tuple(range(100, 351, 25)),
) -> ExperimentResult:
    tech = resolve_tech(tech)
    series = fig10_series(tech, bandwidths)

    headers = ["bandwidth (MFlit/s)"] + list(series)
    rows = []
    for i, bandwidth in enumerate(bandwidths):
        row: list[object] = [bandwidth]
        for label in series:
            row.append(series[label][i].wires)
        rows.append(row)

    checks = [
        Check(
            "I1 wires @300 MFlit/s, 300 MHz",
            sync_wires_needed(300.0, 300.0), 32, 0.0,
        ),
        Check(
            "I1 wires @300 MFlit/s, 100 MHz",
            sync_wires_needed(300.0, 100.0), 96, 0.0,
        ),
        Check(
            "I3 wires @300 MFlit/s",
            float(async_wires_needed(300.0, tech) or -1), 8, 0.0,
        ),
        Check(
            "wire reduction at 300/300 (%)",
            100.0 * (32 - 8) / 32, PAPER_WIRE_REDUCTION_PERCENT, 0.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="Fig 10",
        description="Bandwidth vs. wires (I1 at 100/200/300 MHz vs I3)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=(
            "The async link needs no extra wires as bandwidth grows; "
            "entries of '-' mean the bandwidth exceeds the link's serial "
            "ceiling."
        ),
    )
