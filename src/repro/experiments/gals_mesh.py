"""GALS mixed-clock mesh workload (thin wrapper over the noc layer).

The paper's serialized asynchronous links never clock the wire, so the
two switch domains they join need not share a frequency — the
gate-level GALS tests (``tests/test_gals.py``) drive the links with
independent, even mutually prime, clocks and show lossless in-order
delivery.  This scenario lifts that property to whole-mesh scale using
the behavioural kernel's per-link parameter hook
(``Network(link_params_for=...)``): the mesh is split into a fast west
half and a slow east half.

The behavioural kernel counts *switch cycles*, so the simulation cycle
is pinned to the **fast** domain's clock and every link touching the
slow domain is rescaled by the clock ratio: sustained rate multiplied
by ``slow/fast`` (the slow side accepts at most one flit per slow
cycle) and delivery latency divided by it (the same wall-clock
traversal spans more fast-domain cycles).  Links wholly inside the
fast half keep the plain parameters.  All reported latencies are in
fast-domain cycles.

Checks are invariants (flit conservation, traffic delivered), not paper
numbers: the paper evaluates a single link, this is an extension study
exercising the activity-driven cycle kernel with heterogeneous links.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..design import Design, MeshDesign
from ..link.behavioral import BehavioralLinkParams, derive_link_params
from ..noc import Topology, run_mesh_point
from ..runner.registry import ParamSpec, scenario
from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech

#: load axis, matching the other traffic extension sweeps
_RATE_AXIS = (0.05, 0.10, 0.15, 0.20, 0.25)


def build_design(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    kind: str = "I3",
    fast_mhz: float = 400.0,
    slow_mhz: float = 200.0,
    **_ignored,
) -> Design:
    """The mixed-clock mesh as a structural tree: every node carries
    its clock-domain label, every link touching the slow domain its
    rescaled behavioural parameters (``repro inspect gals-mesh``)."""
    if fast_mhz <= 0 or slow_mhz <= 0:
        raise ValueError("clock frequencies must be positive")
    tech = resolve_tech(tech)
    mesh = MeshDesign(Topology(mesh_size, mesh_size))
    split_col = mesh_size // 2  # nodes with x < split_col are "fast"
    mesh.assign_domains(
        lambda node: "slow" if node.x >= split_col else "fast"
    )
    base = derive_link_params(tech, kind, fast_mhz)
    # simulation cycle = fast clock; links touching the slow domain run
    # at the clock ratio (never above 1: a "slow" domain faster than
    # the fast one degenerates to a uniform mesh)
    ratio = min(1.0, slow_mhz / fast_mhz)
    slow_params = BehavioralLinkParams(
        kind=f"{kind}-gals",
        latency_cycles=max(1, round(base.latency_cycles / ratio)),
        rate_flits_per_cycle=max(
            min(base.rate_flits_per_cycle * ratio, 1.0), 1e-3
        ),
        capacity_flits=base.capacity_flits,
        wire_count=base.wire_count,
        serial_ceiling_mflits=base.serial_ceiling_mflits,
    )
    for link in mesh.links():
        src_domain = mesh.node_at(link.src).domain
        dst_domain = mesh.node_at(link.dst).domain
        if src_domain == "slow" or dst_domain == "slow":
            link.params = slow_params
            link.tag = (
                "cross-domain" if src_domain != dst_domain else "slow"
            )
    mesh.base_params = base
    return Design(mesh)


@scenario(
    "gals-mesh",
    description=(
        "GALS mixed-clock mesh: fast west half, slow east half; links "
        "touching the slow domain are rescaled by the clock ratio"
    ),
    tags=("noc", "gals", "extension", "sweep"),
    params=(
        ParamSpec(
            "mesh_size", int, 4,
            help="mesh is mesh_size x mesh_size switches",
            choices=(2, 3, 4, 5, 6, 7, 8),
        ),
        ParamSpec(
            "injection_rate", float, 0.15,
            help="offered load, flits/node/cycle",
            sweep=_RATE_AXIS,
        ),
        ParamSpec(
            "kind", str, "I3",
            help="link implementation under study",
            choices=("I1", "I2", "I3"),
        ),
        ParamSpec("fast_mhz", float, 400.0,
                  help="clock of the west (fast) domain"),
        ParamSpec("slow_mhz", float, 200.0,
                  help="clock of the east (slow) domain"),
        ParamSpec("cycles", int, 800, help="traffic cycles before drain"),
        ParamSpec("seed", int, 2008),
    ),
    fast_params={"cycles": 200},
    design=build_design,
)
def run(
    tech: Optional[Technology] = None,
    mesh_size: int = 4,
    injection_rate: float = 0.15,
    kind: str = "I3",
    fast_mhz: float = 400.0,
    slow_mhz: float = 200.0,
    cycles: int = 800,
    seed: int = 2008,
) -> ExperimentResult:
    # clock domains are assigned on the structural mesh tree by node
    # path; the kernel's per-link hook reads the tree back
    # (build_design validates the frequencies for both entry points)
    design = build_design(
        tech=tech, mesh_size=mesh_size, kind=kind,
        fast_mhz=fast_mhz, slow_mhz=slow_mhz,
    )
    mesh = design.top
    topology = mesh.topology
    base = mesh.base_params
    cross_domain = len(mesh.cross_domain_links())
    link_params_for = mesh.link_params_for()

    point = run_mesh_point(
        topology,
        base,
        injection_rate=injection_rate,
        cycles=cycles,
        seed=seed,
        link_params_for=link_params_for,
    )

    headers = (
        "mesh", "link", "west clk (MHz)", "east clk (MHz)",
        "cross-domain links", "offered (flit/node/cyc)", "accepted",
        "mean lat (fast cyc)", "p99 lat (fast cyc)",
    )
    rows: List[Sequence[object]] = [[
        f"{mesh_size}x{mesh_size}",
        kind,
        f"{fast_mhz:.0f}",
        f"{slow_mhz:.0f}",
        cross_domain,
        injection_rate,
        f"{point['throughput']:.4f}",
        f"{point['mean_latency']:.1f}",
        f"{point['p99_latency']:.0f}",
    ]]
    checks = [
        Check(
            "flit conservation (ejected vs injected)",
            point["flits_ejected"],
            max(point["flits_injected"], 1),
            0.0,
        ),
        Check(
            "traffic delivered (packets ejected >= 1)",
            point["packets_ejected"],
            1.0,
            0.0,
            mode="at_least",
        ),
    ]
    return ExperimentResult(
        experiment_id="GALS mixed-clock mesh",
        description=(
            f"{mesh_size}x{mesh_size} mesh, {kind} links, west domain "
            f"{fast_mhz:.0f} MHz / east domain {slow_mhz:.0f} MHz, "
            f"uniform traffic at {injection_rate} flit/node/cycle"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
    )
