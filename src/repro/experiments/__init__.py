"""One module per paper table/figure, plus ablations.

``run_all()`` executes every reproduction experiment and returns the
results keyed by experiment id — the EXPERIMENTS.md generator and the
benchmark harness both build on it.
"""

from typing import Dict, Optional

from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech
from . import ablation, fig10, fig11, fig12, fig13, fig14, table1, table2
from . import throughput, wirelength

__all__ = [
    "Check",
    "ExperimentResult",
    "resolve_tech",
    "ablation",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table1",
    "table2",
    "throughput",
    "wirelength",
    "run_all",
]


def run_all(
    tech: Optional[Technology] = None,
    simulate: bool = True,
) -> Dict[str, ExperimentResult]:
    """Run every paper experiment (figures, tables, Section V equations).

    ``simulate=False`` skips the gate-level simulations (fast mode for
    smoke testing); analytical results are unaffected.
    """
    tech = resolve_tech(tech)
    results = {
        "fig10": fig10.run(tech),
        "fig11": fig11.run(tech),
        "fig12": fig12.run(tech),
        "fig13": fig13.run(tech),
        "fig14": fig14.run(tech, with_activity=simulate),
        "table1": table1.run(tech),
        "table2": table2.run(tech),
        "throughput": throughput.run(tech, simulate=simulate),
        "wirelength": wirelength.run(tech, simulate=simulate),
    }
    return results
