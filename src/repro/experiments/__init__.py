"""One module per paper table/figure, plus ablations and extensions.

Importing this package registers every experiment with the scenario
registry (:mod:`repro.runner.registry`) — the modules register
themselves via the ``@scenario`` decorator, nothing enumerates them by
hand.  ``run_all()`` is kept as a convenience wrapper that executes the
paper-tagged scenarios through the registry.
"""

from typing import Dict, Optional

from ..tech.technology import Technology
from .common import Check, ExperimentResult, resolve_tech

# importing the modules is what populates the registry
from . import ablation, fig10, fig11, fig12, fig13, fig14, table1, table2
from . import throughput, wirelength, mesh_design_space, traffic_patterns
from . import fault_injection, gals_mesh, compiled_campaign, noop

__all__ = [
    "Check",
    "ExperimentResult",
    "resolve_tech",
    "ablation",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table1",
    "table2",
    "throughput",
    "wirelength",
    "mesh_design_space",
    "traffic_patterns",
    "fault_injection",
    "gals_mesh",
    "compiled_campaign",
    "noop",
    "run_all",
]


def run_all(
    tech: Optional[Technology] = None,
    simulate: bool = True,
) -> Dict[str, ExperimentResult]:
    """Run every paper experiment (figures, tables, Section V equations).

    ``simulate=False`` runs each scenario with its fast-mode parameter
    overrides (no gate-level simulation); analytical results are
    unaffected.
    """
    from ..runner import registry

    tech = resolve_tech(tech)
    return {
        sc.id: sc.run(tech=tech, fast=not simulate)
        for sc in registry.find(tags=("paper",))
    }
