"""Technology description: delays, energies, geometry, areas.

A :class:`Technology` instance is the single source of every
process-dependent constant used by the reproduction:

* primitive gate/cell delays (picoseconds) — drive the gate-level models;
* handshake macro-delays (the T* constants of the paper's Section V
  equations) — drive the behavioural models and analytical throughput;
* metal geometry (METAL6 width/gap) — drives the Fig 11 wire-area model;
* module areas (µm²) — drive Tables 1 and 2;
* power coefficients — drive the Figs 12–14 analytical power model and
  scale the activity-based simulation estimate.

The calibrated 0.12 µm instance lives in :mod:`repro.tech.st012`; every
constant there is annotated with whether it is *quoted by the paper* or
*fitted/estimated* (and against which published data point).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class GateDelays:
    """Propagation delays of primitive cells, in picoseconds."""

    inv: int = 11
    nand2: int = 20
    nor2: int = 22
    and2: int = 31
    or2: int = 33
    xor2: int = 45
    mux2: int = 40
    #: Muller C-element input-to-output delay
    celement: int = 45
    #: David cell set/reset-to-output delay
    davidcell: int = 50
    #: transparent latch D→Q (latch open)
    latch_dq: int = 50
    #: transparent latch enable→Q
    latch_en: int = 55
    #: edge-triggered flip-flop clock→Q
    dff_clk_q: int = 90
    #: flip-flop setup time
    dff_setup: int = 50

    def scaled(self, factor: float) -> "GateDelays":
        """All delays multiplied by ``factor`` (technology scaling)."""
        return GateDelays(
            **{
                name: max(1, round(getattr(self, name) * factor))
                for name in self.__dataclass_fields__
            }
        )


@dataclass(frozen=True)
class HandshakeTimings:
    """The T* macro-delays of the paper's Section V delay equations.

    All values in picoseconds.  ``t_p_per_segment`` is the wire
    propagation delay of one inter-buffer segment (the paper's worked
    example uses Tp = 0 because its simulation was gate level).
    """

    # shared
    t_p_per_segment: int = 0
    t_nextflit: int = 500

    # per-transfer (I2) constants — Fig 15
    t_reqreq: int = 150
    t_reqack: int = 200
    t_ackack: int = 150
    t_ackout_i2: int = 250
    #: effective control-path delay of one wire-buffer latch controller,
    #: calibrated so the gate-level I2 link's slice cycle matches the
    #: Section V per-transfer equation built from the four constants above
    t_wire_buffer_ctl: int = 212

    # per-word (I3) constants — Fig 16 / worked example
    t_inv: int = 11
    t_validwordack: int = 700
    t_ackout_i3: int = 1400
    t_burst: int = 1100


@dataclass(frozen=True)
class MetalGeometry:
    """Routing-layer geometry for the wire-area model (Fig 11)."""

    #: minimum metal width, µm (paper: METAL6 MetW = 0.44)
    met_w_um: float = 0.44
    #: minimum metal gap, µm (paper: METAL6 MetG = 0.46)
    met_g_um: float = 0.46

    @property
    def pitch_um(self) -> float:
        """Wire pitch (width + gap), µm."""
        return self.met_w_um + self.met_g_um


@dataclass(frozen=True)
class ModuleAreas:
    """Cell areas of each link module, µm² (Tables 1 and 2)."""

    sync_buffer: float = 3966.0
    sync_to_async: float = 9408.0
    async_to_sync: float = 6710.0
    serializer_i2: float = 869.0
    wire_buffer_i2: float = 294.0
    deserializer_i2: float = 1030.0
    serializer_i3: float = 940.0
    wire_buffer_i3: float = 40.0
    deserializer_i3: float = 1178.0


@dataclass(frozen=True)
class PowerCoefficients:
    """Coefficients of the analytical power model (µW, MHz).

    The model for each component is::

        P = p_static + p_per_mhz * f_clk + usage * p_data_per_mhz * f_clk

    where ``f_clk`` is the switch clock in MHz and ``usage`` the fraction
    of time the link is occupied (the paper reports 50 %).  See
    :mod:`repro.analysis.power` for how components combine into the
    Fig 12–14 results and :mod:`repro.tech.st012` for the calibration.
    """

    # synchronous pipeline buffer stage (32-bit register + clock load)
    sync_buf_static: float = 79.7
    sync_buf_per_mhz: float = 0.600
    sync_buf_data_per_mhz: float = 0.959

    # domain-conversion interfaces (sum of synch→asynch and asynch→synch)
    conv_static: float = 251.5
    conv_per_mhz: float = 1.075
    conv_data_per_mhz: float = 1.420

    # serializer + deserializer, per-transfer flavour (I2)
    serdes_i2_static: float = 88.0
    serdes_i2_data_per_mhz: float = 0.600

    # serializer + deserializer, per-word flavour (I3): shift-register
    # deserializer latches all four registers per slice → more data power
    serdes_i3_static: float = 138.0
    serdes_i3_data_per_mhz: float = 1.000

    # asynchronous wire buffer, per stage
    async_buf_i2_static: float = 8.5
    async_buf_i2_data_per_mhz: float = 0.240
    async_buf_i3_static: float = 1.25
    async_buf_i3_data_per_mhz: float = 0.020

    #: energy scale for the activity-based estimate, fJ per (cap-weighted)
    #: transition; calibrated so the simulated I1 link at 100 MHz / 8
    #: buffers matches the paper's 1498 µW.
    energy_per_transition_fj: float = 1.0


@dataclass(frozen=True)
class Technology:
    """A complete technology description."""

    name: str
    feature_nm: int
    gates: GateDelays = field(default_factory=GateDelays)
    handshake: HandshakeTimings = field(default_factory=HandshakeTimings)
    metal: MetalGeometry = field(default_factory=MetalGeometry)
    areas: ModuleAreas = field(default_factory=ModuleAreas)
    power: PowerCoefficients = field(default_factory=PowerCoefficients)
    #: wire propagation delay per millimetre of routed wire, ps/mm
    wire_delay_ps_per_mm: float = 60.0
    #: notes on where each constant comes from
    provenance: Dict[str, str] = field(default_factory=dict)

    def with_gates(self, gates: GateDelays) -> "Technology":
        return replace(self, gates=gates)

    def with_handshake(self, handshake: HandshakeTimings) -> "Technology":
        return replace(self, handshake=handshake)

    def wire_delay_ps(self, length_um: float) -> int:
        """Propagation delay of a wire of ``length_um`` micrometres."""
        if length_um < 0:
            raise ValueError(f"wire length must be non-negative: {length_um}")
        return round(self.wire_delay_ps_per_mm * length_um / 1000.0)
