"""Technology models (delays, energies, geometry, areas).

``st012()`` returns the calibrated ST 0.12 µm instance used by the paper;
``scale_technology`` projects it to other nodes for design-space studies.
"""

from .technology import (
    GateDelays,
    HandshakeTimings,
    MetalGeometry,
    ModuleAreas,
    PowerCoefficients,
    Technology,
)
from .st012 import st012
from .scaling import scale_technology

__all__ = [
    "GateDelays",
    "HandshakeTimings",
    "MetalGeometry",
    "ModuleAreas",
    "PowerCoefficients",
    "Technology",
    "st012",
    "scale_technology",
]
