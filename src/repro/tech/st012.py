"""Calibrated STMicroelectronics 0.12 µm technology instance.

Every constant below is tagged with its provenance:

``[paper]``
    quoted directly in Ogg et al., DATE 2008.
``[fit:<target>]``
    fitted so that the analytical model reproduces the cited published
    data point(s).
``[est]``
    estimate consistent with the paper's qualitative statements; the
    published totals constrain the *sum* but not the split.

Calibration chain (see DESIGN.md §5–6 for the algebra):

* Fig 12 gives the I1 power at 100 MHz for 2 and 8 buffers
  (372 / 1498 µW) → per-stage power at 100 MHz = 187.7 µW, negligible
  fixed offset.
* Fig 13 gives I1 at 300 MHz / 8 buffers (3229 µW) → per-stage 403.6 µW
  → linear-in-f fit: stage = 79.7 + 1.0797·f(µW, MHz) at 50 % usage;
  split 0.600·f clock + 0.5·0.959·f data + 79.7 static.
* Fig 12 I2 (589→712 µW) → 20.5 µW per async buffer (matches Fig 14's
  82 µW for 4 buffers) and 548 µW base; I3 (623→637 µW) → 2.33 µW per
  buffer (matches Fig 14's 9 µW) and 618 µW base.
* Fig 13 I3 at 300 MHz / 8 buffers (1110 µW) → the frequency-dependent
  part of the conversion interfaces = 2.365 µW/MHz.
* Table 2 fixes the I2 module areas exactly; Table 1 totals fix the
  synchronous buffer area (15864/4 = 3966 µm²) and the *sum* of the I3
  serializer/buffer/deserializer areas (18396 − 9408 − 6710 = 2278 µm²).
"""

from __future__ import annotations

from .technology import (
    GateDelays,
    HandshakeTimings,
    MetalGeometry,
    ModuleAreas,
    PowerCoefficients,
    Technology,
)

_PROVENANCE = {
    "gates.inv": "[paper] Tinv = 0.011 ns from the ST 0.12 CORE9GPLL datasheet",
    "gates.*": "[est] typical CORE9GPLL-class delays, chosen so the "
    "gate-level I3 link lands on the Section V worked-example cycle time",
    "handshake.t_validwordack": "[paper] ~0.7 ns from simulation",
    "handshake.t_ackout_i3": "[paper] ~1.4 ns from simulation",
    "handshake.t_burst": "[paper] ~1.1 ns from simulation",
    "handshake.t_p_per_segment": "[paper] Tp = 0 (gate-level simulation)",
    "handshake.i2": "[est] per-transfer constants sized from C-element/"
    "latch-controller delays; the paper gives the equation but no values",
    "metal": "[paper] METAL6 MetW = 0.44 µm, MetG = 0.46 µm",
    "areas.sync_buffer": "[fit:Table1] 15864 µm² / 4 buffers",
    "areas.i2_modules": "[paper] Table 2",
    "areas.i3_modules": "[est] split of the Table 1 I3 remainder "
    "(2278 µm²) across serializer/buffers/deserializer",
    "power.sync": "[fit:Fig12+Fig13] I1 points 372/1498/3229 µW",
    "power.conv": "[fit:Fig12+Fig13+Fig14] base power of I2/I3 minus "
    "ser/des estimate; f-slope from I3 1110 µW at 300 MHz",
    "power.serdes": "[est] split constrained by Fig 14 (conversion "
    "dominates; I3 shift-register deserializer > I2 mux deserializer)",
    "power.async_buf": "[fit:Fig12+Fig14] I2 20.5 µW/buffer (82 µW @ 4), "
    "I3 2.3 µW/buffer (9 µW @ 4)",
}


def st012() -> Technology:
    """The calibrated 0.12 µm technology used throughout the repo."""
    return Technology(
        name="ST 0.12um CORE9GPLL (calibrated)",
        feature_nm=120,
        gates=GateDelays(
            inv=11,
            nand2=20,
            nor2=22,
            and2=31,
            or2=33,
            xor2=45,
            mux2=40,
            celement=45,
            davidcell=50,
            latch_dq=50,
            latch_en=55,
            dff_clk_q=90,
            dff_setup=50,
        ),
        handshake=HandshakeTimings(
            t_p_per_segment=0,
            t_nextflit=500,
            t_reqreq=150,
            t_reqack=200,
            t_ackack=150,
            t_ackout_i2=250,
            t_wire_buffer_ctl=212,
            t_inv=11,
            t_validwordack=700,
            t_ackout_i3=1400,
            t_burst=1100,
        ),
        metal=MetalGeometry(met_w_um=0.44, met_g_um=0.46),
        areas=ModuleAreas(
            sync_buffer=3966.0,
            sync_to_async=9408.0,
            async_to_sync=6710.0,
            serializer_i2=869.0,
            wire_buffer_i2=294.0,
            deserializer_i2=1030.0,
            serializer_i3=940.0,
            wire_buffer_i3=40.0,
            deserializer_i3=1178.0,
        ),
        power=PowerCoefficients(
            sync_buf_static=79.7,
            sync_buf_per_mhz=0.600,
            sync_buf_data_per_mhz=0.959,
            conv_static=251.5,
            conv_per_mhz=1.075,
            conv_data_per_mhz=1.420,
            serdes_i2_static=88.0,
            serdes_i2_data_per_mhz=0.600,
            serdes_i3_static=138.0,
            serdes_i3_data_per_mhz=1.000,
            async_buf_i2_static=8.5,
            async_buf_i2_data_per_mhz=0.240,
            async_buf_i3_static=1.25,
            async_buf_i3_data_per_mhz=0.020,
            energy_per_transition_fj=1.0,
        ),
        wire_delay_ps_per_mm=60.0,
        provenance=dict(_PROVENANCE),
    )
