"""First-order technology scaling (an extension beyond the paper).

The paper's introduction argues that with further scaling the number of
point-to-point links grows, making wire reduction more valuable.  This
helper projects a calibrated :class:`Technology` to another feature size
using classical constant-field scaling rules:

* gate delays scale ∝ feature size,
* metal width/gap scale ∝ feature size (global layers scale slower in
  practice, so a separate ``metal_factor`` can be supplied),
* cell areas scale ∝ feature size²,
* dynamic power coefficients scale ∝ feature size (C·V² with V reduced
  alongside the feature size is closer to cubic; we expose the exponent).

This is a projection tool for the design-space examples, not a claim of
sign-off accuracy — provenance strings mark every derived instance.
"""

from __future__ import annotations

from dataclasses import replace

from .technology import MetalGeometry, ModuleAreas, PowerCoefficients, Technology


def scale_technology(
    tech: Technology,
    target_nm: int,
    metal_factor: float | None = None,
    power_exponent: float = 1.0,
) -> Technology:
    """Project ``tech`` to ``target_nm``.

    Parameters
    ----------
    tech:
        Source technology (e.g. the calibrated 0.12 µm instance).
    target_nm:
        Target feature size in nanometres.
    metal_factor:
        Scale factor for global-metal width/gap; defaults to the feature
        scale factor (global layers often scale slower — pass a larger
        value to model that).
    power_exponent:
        Dynamic-power coefficients are multiplied by
        ``factor ** power_exponent``; 1.0 is the conservative linear rule.
    """
    if target_nm <= 0:
        raise ValueError(f"target feature size must be positive: {target_nm}")
    factor = target_nm / tech.feature_nm
    if metal_factor is None:
        metal_factor = factor

    gates = tech.gates.scaled(factor)

    metal = MetalGeometry(
        met_w_um=tech.metal.met_w_um * metal_factor,
        met_g_um=tech.metal.met_g_um * metal_factor,
    )

    area_factor = factor * factor
    areas = ModuleAreas(
        **{
            name: getattr(tech.areas, name) * area_factor
            for name in tech.areas.__dataclass_fields__
        }
    )

    power_factor = factor**power_exponent
    power = PowerCoefficients(
        **{
            name: getattr(tech.power, name) * power_factor
            for name in tech.power.__dataclass_fields__
        }
    )

    handshake = replace(
        tech.handshake,
        t_inv=max(1, round(tech.handshake.t_inv * factor)),
        t_reqreq=max(1, round(tech.handshake.t_reqreq * factor)),
        t_reqack=max(1, round(tech.handshake.t_reqack * factor)),
        t_ackack=max(1, round(tech.handshake.t_ackack * factor)),
        t_ackout_i2=max(1, round(tech.handshake.t_ackout_i2 * factor)),
        t_validwordack=max(1, round(tech.handshake.t_validwordack * factor)),
        t_ackout_i3=max(1, round(tech.handshake.t_ackout_i3 * factor)),
        t_burst=max(1, round(tech.handshake.t_burst * factor)),
        t_nextflit=max(1, round(tech.handshake.t_nextflit * factor)),
    )

    provenance = dict(tech.provenance)
    provenance["scaling"] = (
        f"[derived] scaled from {tech.name} by factor {factor:.3f} "
        f"(metal {metal_factor:.3f}, power exponent {power_exponent})"
    )

    return replace(
        tech,
        name=f"{tech.name} scaled to {target_nm} nm",
        feature_nm=target_nm,
        gates=gates,
        metal=metal,
        areas=areas,
        power=power,
        handshake=handshake,
        wire_delay_ps_per_mm=tech.wire_delay_ps_per_mm,
        provenance=provenance,
    )
