"""Bit-parallel compiled circuit: 64 simulation lanes per machine word.

:func:`compile_component` turns an elaborated Component tree into one
generated Python function of bitwise operations over 64-bit integers,
where bit ``k`` of every net is independent simulation lane ``k``.  The
generated code has three parts per *phase* (a phase = apply stimulus,
then settle to quiescence — the granularity at which the event kernels
and this backend are compared):

1. the levelized combinational pass — one straight-line assignment per
   gate, in topological order, so a single pass settles all logic;
2. the sequential pass — every state element computes its next value
   from *current* values (two-phase simultaneous commit, so e.g. a
   shift register's stages all capture their predecessor's old output),
   then commits; edge-triggered elements compare against a per-round
   baseline so a clock poked high is seen as a rising edge and token
   ripples propagate across rounds;
3. transition accounting at settled-sample granularity — per phase, not
   per event, because bitwise evaluation cannot see the inertial
   glitches the event kernels filter anyway.

Ring oscillators are free-running and would never reach quiescence, so
they are excluded from the settle loop; :meth:`CompiledCircuit.tick`
advances every oscillator by one half-period per call, with the loop
*inside* the generated code so a 20k-toggle benchmark does not pay 20k
Python function calls.

Semantics contract versus the event kernels (enforced by the
equivalence tests): stimulus is applied phase-by-phase, with clocks and
strobes poked in their own phase so data inputs are settled before an
edge samples them.  Under that discipline lane 0 is bit-identical to
both event kernels on settled values and sampled transition counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..obs.metrics import REGISTRY as _OBS
from .levelize import levelize
from .netlist import CompileError, Netlist, extract

#: all 64 lanes
MASK = (1 << 64) - 1
LANES = 64


class SettleError(RuntimeError):
    """The sequential pass did not reach quiescence (runaway feedback)."""


NetRef = Union[str, object]


@dataclass
class CompiledStats:
    """Shape report for ``repro inspect`` and the benchmarks."""

    n_nets: int
    n_inputs: int
    n_gates: int
    n_state: int
    depth: int
    gates_per_level: List[int]
    counts_by_kind: Dict[str, int]
    lanes: int = LANES

    def render(self) -> str:
        lines = [
            f"nets:            {self.n_nets} "
            f"({self.n_inputs} stimulus inputs)",
            f"comb gates:      {self.n_gates} in {self.depth} levels",
            f"state elements:  {self.n_state}",
            f"lanes per word:  {self.lanes}",
        ]
        if self.gates_per_level:
            profile = " ".join(str(n) for n in self.gates_per_level)
            lines.append(f"gates per level: {profile}")
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.counts_by_kind.items())
        )
        lines.append(f"by kind:         {kinds}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# code generation


def _state_lines(netlist: Netlist, ei: int, state,
                 tmp: Dict[int, str]) -> List[str]:
    """Emit next-value temps for one state element.

    Temps read only ``n*`` (current round) and ``p*`` (previous round
    baselines) locals; the caller commits them afterwards, which is what
    gives all elements simultaneous-update semantics.
    """
    idx = netlist.idx
    pins = state.pins
    pre = f"x{ei}"
    out: List[str] = []

    def t(sig) -> str:
        name = f"t{idx(sig)}"
        tmp[idx(sig)] = name
        return name

    if state.kind == "dlatch":
        d, g, q = idx(pins["d"]), idx(pins["g"]), idx(pins["q"])
        out.append(f"{t(pins['q'])} = (n{d} & n{g}) | (n{q} & (n{g} ^ M))")
    elif state.kind == "dff":
        d, clk, q = idx(pins["d"]), idx(pins["clk"]), idx(pins["q"])
        out.append(f"{pre}c = n{clk} & (p{clk} ^ M)")
        if pins.get("clear") is not None:
            clr = idx(pins["clear"])
            out.append(f"{pre}c &= n{clr} ^ M")
            out.append(
                f"{t(pins['q'])} = ((n{d} & {pre}c) | "
                f"(n{q} & ({pre}c ^ M))) & (n{clr} ^ M)"
            )
        else:
            out.append(
                f"{t(pins['q'])} = (n{d} & {pre}c) | "
                f"(n{q} & ({pre}c ^ M))"
            )
    elif state.kind == "regbus":
        clk = idx(pins["clk"])
        en = idx(pins["enable"])
        out.append(f"{pre}c = n{clk} & (p{clk} ^ M) & n{en}")
        for d_sig, q_sig in zip(pins["d"], pins["q"]):
            d, q = idx(d_sig), idx(q_sig)
            out.append(
                f"{t(q_sig)} = (n{d} & {pre}c) | (n{q} & ({pre}c ^ M))"
            )
    elif state.kind == "celement":
        q = idx(pins["q"])
        effs = []
        for sig, inv in zip(pins["inputs"], state.params["invert"]):
            expr = f"(n{idx(sig)} ^ M)" if inv else f"n{idx(sig)}"
            effs.append(expr)
        all1 = " & ".join(effs)
        all0 = " & ".join(f"({e} ^ M)" for e in effs)
        out.append(f"{pre}s = {all1}")
        out.append(f"{pre}z = {all0}")
        tq = t(pins["q"])
        out.append(f"{tq} = (n{q} | {pre}s) & ({pre}z ^ M)")
        if pins.get("reset") is not None:
            rst = idx(pins["reset"])
            rv = "M" if state.params["reset_value"] else "0"
            out.append(f"{tq} = ({tq} & (n{rst} ^ M)) | ({rv} & n{rst})")
    elif state.kind == "davidcell":
        s, clr = idx(pins["set"]), idx(pins["clear"])
        q = idx(pins["q"])
        out.append(f"{pre}r = n{s} & (p{s} ^ M) & (n{clr} ^ M)")
        tq = t(pins["q"])
        out.append(f"{tq} = (n{q} | {pre}r) & (n{clr} ^ M)")
        out.append(f"{t(pins['o1'])} = {tq}")
    elif state.kind == "onehotmux":
        sels = [idx(sig) for sig in pins["sel"]]
        for bit, q_sig in enumerate(pins["out"]):
            q = idx(q_sig)
            out.append(f"{pre}a = 0")
            out.append(f"{pre}m = M")
            for tap, sel in enumerate(sels):
                src = idx(pins["ins"][tap][bit])
                out.append(f"{pre}a |= n{sel} & {pre}m & n{src}")
                out.append(f"{pre}m &= n{sel} ^ M")
            out.append(f"{t(q_sig)} = {pre}a | ({pre}m & n{q})")
    elif state.kind == "flagsync":
        clk, wr = idx(pins["clk"]), idx(pins["wr_en"])
        clr = idx(pins["clear"])
        fa, s1 = idx(pins["flag_a"]), idx(pins["sync1"])
        fs = idx(pins["flag_s"])
        out.append(
            f"{pre}c = n{clk} & (p{clk} ^ M) & (n{clr} ^ M)"
        )
        out.append(f"{pre}w = {pre}c & n{wr}")
        out.append(f"{pre}h = {pre}c & (n{wr} ^ M)")
        out.append(
            f"{t(pins['sync1'])} = (n{s1} & ({pre}c ^ M)) | {pre}w | "
            f"(n{fa} & {pre}h)"
        )
        out.append(
            f"{t(pins['flag_s'])} = (n{fs} & ({pre}c ^ M)) | {pre}w | "
            f"(n{s1} & {pre}h)"
        )
        out.append(
            f"{t(pins['flag_a'])} = (n{fa} | {pre}w) & (n{clr} ^ M)"
        )
    elif state.kind == "ringosc":
        # free-running toggle handled by tick(); inside a settle the
        # output only reacts to the enable level (disable clears it)
        q, en = idx(pins["out"]), idx(pins["enable"])
        out.append(f"{t(pins['out'])} = n{q} & n{en}")
    else:  # pragma: no cover - extraction guarantees known kinds
        raise CompileError(f"no code template for {state.kind!r}")
    return out


class _Codegen:
    def __init__(self, netlist: Netlist, levels: List[List[int]],
                 forceable: frozenset) -> None:
        self.netlist = netlist
        self.levels = levels
        self.forceable = forceable
        self.edge_nets = sorted(
            {netlist.idx(sig) for st in netlist.states for sig in st.edges}
        )
        self.osc = [
            st for st in netlist.states if st.kind == "ringosc"
        ]
        # every round at least one state output must change or the loop
        # exits; a token can ripple through every element, and each
        # element output can both rise and fall, so 4x + slack bounds
        # any legitimate settle
        self.max_rounds = 4 * max(1, len(netlist.states)) + len(levels) + 8

    # -- small emit helpers -------------------------------------------
    def _force_wrap(self, i: int) -> List[str]:
        if i in self.forceable:
            return [f"n{i} = (n{i} & k{i}) | v{i}"]
        return []

    def _comb_lines(self) -> List[str]:
        out: List[str] = []
        formulas = {
            "inv": "n{a} ^ M",
            "and2": "n{a} & n{b}",
            "or2": "n{a} | n{b}",
            "nand2": "(n{a} & n{b}) ^ M",
            "nor2": "(n{a} | n{b}) ^ M",
            "xor2": "n{a} ^ n{b}",
            "mux2": "(n{b} & n{s}) | (n{a} & (n{s} ^ M))",
        }
        idx = self.netlist.idx
        for level in self.levels:
            for gi in level:
                gate = self.netlist.gates[gi]
                ins = [idx(sig) for sig in gate.inputs]
                o = idx(gate.output)
                keys = dict(a=ins[0])
                if len(ins) > 1:
                    keys["b"] = ins[1]
                if len(ins) > 2:
                    keys["s"] = ins[2]
                out.append(f"n{o} = " + formulas[gate.kind].format(**keys))
                out.extend(self._force_wrap(o))
        return out

    def _state_block(self) -> List[str]:
        netlist = self.netlist
        tmp: Dict[int, str] = {}
        lines: List[str] = []
        for ei, state in enumerate(netlist.states):
            lines.extend(_state_lines(netlist, ei, state, tmp))
        lines.append("ch = 0")
        for i in sorted(tmp):
            if i in self.forceable:
                lines.append(f"{tmp[i]} = ({tmp[i]} & k{i}) | v{i}")
            lines.append(f"ch |= n{i} ^ {tmp[i]}")
            lines.append(f"n{i} = {tmp[i]}")
        for i in self.edge_nets:
            lines.append(f"p{i} = n{i}")
        return lines

    def _settle_body(self) -> List[str]:
        """The per-phase core: comb pass (+ sequential loop if needed)."""
        comb = self._comb_lines()
        if not self.netlist.states:
            return comb + ["rounds = 1"]
        body = ["rounds = 0", "while True:", "    rounds += 1",
                f"    if rounds > {self.max_rounds}:",
                "        raise SettleError("
                f"'no quiescence after {self.max_rounds} rounds; "
                "level-held feedback through state elements')"]
        inner = comb + self._state_block() + ["if not ch:", "    break"]
        body.extend("    " + line for line in inner)
        return body

    def _counter_lines(self) -> List[str]:
        out: List[str] = []
        for i in range(len(self.netlist.nets)):
            out.append(f"dl = n{i} ^ c{i}")
            out.append("if dl:")
            out.append(f"    r0 += dl & n{i} & 1")
            out.append(f"    f0 += dl & (n{i} ^ M) & 1")
            out.append(f"    ra += bc(dl & n{i})")
            out.append(f"    fa += bc(dl & (n{i} ^ M))")
            out.append(f"    c{i} = n{i}")
        return out

    def _loads(self) -> List[str]:
        n = len(self.netlist.nets)
        out = [f"n{i} = S[{i}]" for i in range(n)]
        out += [f"c{i} = CM[{i}]" for i in range(n)]
        out += [f"k{i} = K[{i}]" for i in sorted(self.forceable)]
        out += [f"v{i} = FV[{i}]" for i in sorted(self.forceable)]
        out += [f"p{i} = c{i}" for i in self.edge_nets]
        out += ["r0 = CT[0]", "f0 = CT[1]", "ra = CT[2]", "fa = CT[3]"]
        return out

    def _stores(self) -> List[str]:
        n = len(self.netlist.nets)
        out = [f"S[{i}] = n{i}" for i in range(n)]
        out += [f"CM[{i}] = c{i}" for i in range(n)]
        out += ["CT[0] = r0", "CT[1] = f0", "CT[2] = ra", "CT[3] = fa"]
        return out

    def _osc_toggles(self) -> List[str]:
        out: List[str] = []
        idx = self.netlist.idx
        for state in self.osc:
            o = idx(state.pins["out"])
            en = idx(state.pins["enable"])
            out.append(f"n{o} = (n{o} ^ M) & n{en}")
            out.extend(self._force_wrap(o))
        return out

    def source(self) -> str:
        lines = [
            "# generated by repro.compiled.backend - do not edit",
            f"M = {MASK}",
            "bc = int.bit_count",
            "",
            "def settle(S, CM, K, FV, CT):",
        ]
        body = (
            self._loads() + self._settle_body() + self._counter_lines()
            + self._stores() + ["return rounds"]
        )
        lines.extend("    " + line for line in body)
        lines.append("")
        lines.append("def tick(S, CM, K, FV, CT, count):")
        per_tick = (
            self._osc_toggles() + self._settle_body()
            + self._counter_lines() + ["total += rounds"]
        )
        body = (
            self._loads() + ["total = 0", "for _ in range(count):"]
            + ["    " + line for line in per_tick]
            + self._stores() + ["return total"]
        )
        lines.extend("    " + line for line in body)
        lines.append("")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the public object


class CompiledCircuit:
    """64-lane bit-parallel executor for one compiled Component tree."""

    def __init__(self, netlist: Netlist, levels: List[List[int]],
                 forceable: frozenset, source: str) -> None:
        self.netlist = netlist
        self.levels = levels
        self.source = source
        self._forceable = forceable
        namespace: Dict[str, object] = {"SettleError": SettleError}
        exec(compile(source, "<repro.compiled>", "exec"), namespace)
        self._settle = namespace["settle"]
        self._tick = namespace["tick"]
        n = len(netlist.nets)
        self.S = [MASK if sig._value else 0 for sig in netlist.nets]
        self.CM = list(self.S)
        self.K = [MASK] * n
        self.FV = [0] * n
        self.CT = [0, 0, 0, 0]
        self._inputs = frozenset(netlist.input_nets())
        self.last_rounds = 0
        #: cumulative settle calls / sequential rounds (observability)
        self.settles = 0
        self.total_rounds = 0
        if _OBS.enabled:
            _OBS.counter("compiled.circuits").inc()
            _OBS.gauge("compiled.depth").set(len(levels))
            _OBS.gauge("compiled.gates").set(len(netlist.gates))
            _OBS.gauge("compiled.nets").set(n)
            _OBS.gauge("compiled.lanes").set(LANES)
        # construction mirrors the event kernels' t=0 settle: propagate
        # initial values once, then start transition counts from zero
        self.settle()
        self.zero_counts()

    # -- addressing ---------------------------------------------------
    def _resolve(self, net: NetRef) -> int:
        if isinstance(net, str):
            try:
                return self.netlist.names[net]
            except KeyError:
                raise ValueError(
                    f"unknown net {net!r}; {len(self.netlist.names)} "
                    f"nets are addressable by signal name"
                ) from None
        try:
            return self.netlist.index[id(net)]
        except KeyError:
            raise ValueError(
                f"signal {getattr(net, 'name', net)!r} is not part of "
                f"this compiled circuit"
            ) from None

    # -- stimulus -----------------------------------------------------
    def poke(self, net: NetRef, word: int) -> None:
        """Set a stimulus net to a 64-lane word (bit k = lane k)."""
        i = self._resolve(net)
        if i not in self._inputs:
            raise ValueError(
                f"net {self.netlist.nets[i].name!r} is driven by "
                f"{self.netlist.driver_of[i]}; only undriven stimulus "
                f"nets can be poked (declare fault sites via forceable=)"
            )
        self.S[i] = ((word & MASK) & self.K[i]) | self.FV[i]

    def settle(self) -> int:
        """Run comb + sequential passes to quiescence; returns rounds."""
        rounds = self._settle(self.S, self.CM, self.K, self.FV, self.CT)
        self.last_rounds = rounds
        self.settles += 1
        self.total_rounds += rounds
        # one settle spans the whole generated function — coarse enough
        # to publish directly (never inside the generated loop)
        if _OBS.enabled:
            _OBS.counter("compiled.settles").inc()
            _OBS.counter("compiled.settle_rounds").inc(rounds)
        return rounds

    def step(self, pokes: Union[Mapping[NetRef, int],
                                Iterable[Tuple[NetRef, int]]] = ()) -> int:
        """One phase: apply pokes, then settle."""
        items = pokes.items() if isinstance(pokes, Mapping) else pokes
        for net, word in items:
            self.poke(net, word)
        return self.settle()

    def tick(self, count: int = 1) -> int:
        """Advance every ring oscillator ``count`` half-periods."""
        total = self._tick(self.S, self.CM, self.K, self.FV, self.CT,
                           count)
        self.settles += count
        self.total_rounds += total
        if _OBS.enabled:
            _OBS.counter("compiled.settles").inc(count)
            _OBS.counter("compiled.settle_rounds").inc(total)
        return total

    # -- fault lanes --------------------------------------------------
    def force(self, net: NetRef, value: int, lanes: int = MASK) -> None:
        """Stick ``net`` at per-lane bits of ``value`` on ``lanes``.

        Driven nets must have been declared in ``forceable=`` at
        compile time (the override is woven into the generated code);
        stimulus nets are always forceable.  Repeated calls merge.
        """
        i = self._resolve(net)
        if i not in self._forceable and i not in self._inputs:
            raise ValueError(
                f"net {self.netlist.nets[i].name!r} was not declared "
                f"forceable at compile time"
            )
        lanes &= MASK
        self.K[i] &= ~lanes & MASK
        self.FV[i] = (self.FV[i] & ~lanes) | (value & lanes)
        self.S[i] = (self.S[i] & self.K[i]) | self.FV[i]

    def release(self, net: NetRef, lanes: int = MASK) -> None:
        i = self._resolve(net)
        self.K[i] |= lanes & MASK
        self.FV[i] &= ~lanes & MASK

    # -- observation --------------------------------------------------
    def peek(self, net: NetRef) -> int:
        return self.S[self._resolve(net)]

    def lane(self, net: NetRef, lane: int) -> int:
        return (self.S[self._resolve(net)] >> lane) & 1

    def values(self) -> Dict[str, int]:
        """Settled 64-lane word of every net, by signal name."""
        return {
            sig.name: self.S[self.netlist.names[sig.name]]
            for sig in self.netlist.nets
        }

    def lane_values(self, lane: int = 0) -> Dict[str, int]:
        return {
            name: (word >> lane) & 1
            for name, word in self.values().items()
        }

    def counts(self) -> Dict[str, int]:
        """Sampled transition totals: lane 0 and all-lane aggregates."""
        return {
            "rising0": self.CT[0],
            "falling0": self.CT[1],
            "rising_all": self.CT[2],
            "falling_all": self.CT[3],
        }

    def zero_counts(self) -> None:
        self.CT[0] = self.CT[1] = self.CT[2] = self.CT[3] = 0

    # -- reporting ----------------------------------------------------
    def stats(self) -> CompiledStats:
        return CompiledStats(
            n_nets=len(self.netlist.nets),
            n_inputs=len(self._inputs),
            n_gates=len(self.netlist.gates),
            n_state=len(self.netlist.states),
            depth=len(self.levels),
            gates_per_level=[len(level) for level in self.levels],
            counts_by_kind=self.netlist.counts_by_kind(),
        )


def compile_component(root, forceable: Iterable[NetRef] = ()
                      ) -> CompiledCircuit:
    """Compile a Component tree (or a Design) into a 64-lane executor.

    ``forceable`` lists nets (signal names or Signal objects) that
    :meth:`CompiledCircuit.force` may override per lane — fault
    injection sites, declared up front so the override costs nothing
    on nets that never use it.
    """
    root = getattr(root, "top", root)
    netlist = extract(root)
    levels = levelize(netlist)

    def resolve(net: NetRef) -> int:
        if isinstance(net, str):
            if net not in netlist.names:
                raise CompileError(
                    f"forceable net {net!r} not found in the netlist"
                )
            return netlist.names[net]
        if id(net) not in netlist.index:
            raise CompileError(
                f"forceable signal {getattr(net, 'name', net)!r} is "
                f"not part of the netlist"
            )
        return netlist.index[id(net)]

    force_set = frozenset(resolve(net) for net in forceable)
    source = _Codegen(netlist, levels, force_set).source()
    return CompiledCircuit(netlist, levels, force_set, source)
