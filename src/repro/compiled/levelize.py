"""Levelization: order the combinational gates for single-pass evaluation.

Kahn's algorithm over the gate-to-gate dependency graph (gate B depends
on gate A when A drives one of B's input nets).  State-element outputs
and external stimulus nets have no combinational driver, so they are
sources; the result is a list of *levels* — every gate in level ``k``
reads only nets driven by levels ``< k``, state elements, or inputs —
which the code generator emits in order so one pass settles all
combinational logic.

If gates remain after Kahn's algorithm, they form at least one
combinational cycle (feedback not broken by a latch/flip-flop/C-element).
That is a modelling error in this backend — the event kernels resolve
such loops by physical delay, bitwise evaluation cannot — so we raise
:class:`CombinationalLoopError` naming the *shortest* feedback path by
hierarchy path, found with a BFS from each remaining gate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from .netlist import CombGate, CompileError, Netlist


class CombinationalLoopError(CompileError):
    """The comb netlist has gate-only feedback; ``cycle`` names it."""

    def __init__(self, cycle: List[str]) -> None:
        self.cycle = list(cycle)
        loop = " -> ".join(self.cycle + [self.cycle[0]])
        super().__init__(
            f"combinational loop ({len(self.cycle)} gates): {loop}; "
            f"break the feedback with a state element (DLatch, "
            f"DFlipFlop, CElement, DavidCell) or restructure the logic"
        )


def _gate_deps(netlist: Netlist) -> List[List[int]]:
    """``deps[i]`` = indices of gates whose output gate ``i`` reads."""
    comb_driver: Dict[int, int] = {}
    for gi, gate in enumerate(netlist.gates):
        comb_driver[netlist.idx(gate.output)] = gi
    deps: List[List[int]] = []
    for gate in netlist.gates:
        row = []
        for sig in gate.inputs:
            src = comb_driver.get(netlist.idx(sig))
            if src is not None:
                row.append(src)
        deps.append(row)
    return deps


def _shortest_cycle(deps: List[List[int]], members: List[int],
                    gates: List[CombGate]) -> List[str]:
    """Shortest gate cycle among ``members``, as hierarchy paths.

    BFS from each member along dependency edges until the start gate
    reappears; the globally shortest such loop is the most readable
    diagnostic (a 2-gate cross-coupled pair is reported as 2 gates, not
    as the 40-gate strongly-connected blob it might sit inside).
    """
    member_set = set(members)
    best: List[int] = []
    for start in members:
        # parent links let us reconstruct the path start -> ... -> start
        parent: Dict[int, int] = {}
        queue = deque([start])
        seen = {start}
        found = None
        while queue and found is None:
            node = queue.popleft()
            for dep in deps[node]:
                if dep not in member_set:
                    continue
                if dep == start:
                    found = node
                    break
                if dep not in seen:
                    seen.add(dep)
                    parent[dep] = node
                    queue.append(dep)
        if found is None:
            continue
        path = [found]
        while path[-1] != start:
            path.append(parent[path[-1]])
        path.reverse()
        if not best or len(path) < len(best):
            best = path
    # `best` lists gates in dependency order (each reads the previous);
    # present it signal-flow first
    return [gates[gi].path for gi in best]


def levelize(netlist: Netlist) -> List[List[int]]:
    """Topological levels of gate indices; raises on comb feedback."""
    deps = _gate_deps(netlist)
    fanout: List[List[int]] = [[] for _ in netlist.gates]
    missing = []
    for gi, row in enumerate(deps):
        missing.append(len(row))
        for src in row:
            fanout[src].append(gi)
    levels: List[List[int]] = []
    frontier = [gi for gi, count in enumerate(missing) if count == 0]
    placed = 0
    while frontier:
        levels.append(sorted(frontier))
        placed += len(frontier)
        next_frontier: List[int] = []
        for gi in frontier:
            for dst in fanout[gi]:
                missing[dst] -= 1
                if missing[dst] == 0:
                    next_frontier.append(dst)
        frontier = next_frontier
    if placed != len(netlist.gates):
        leftover = [gi for gi, count in enumerate(missing) if count > 0]
        raise CombinationalLoopError(
            _shortest_cycle(deps, leftover, netlist.gates)
        )
    return levels
