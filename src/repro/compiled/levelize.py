"""Levelization: order the combinational gates for single-pass evaluation.

Kahn's algorithm over the gate-to-gate dependency graph (gate B depends
on gate A when A drives one of B's input nets).  State-element outputs
and external stimulus nets have no combinational driver, so they are
sources; the result is a list of *levels* — every gate in level ``k``
reads only nets driven by levels ``< k``, state elements, or inputs —
which the code generator emits in order so one pass settles all
combinational logic.

If gates remain after Kahn's algorithm, they form at least one
combinational cycle (feedback not broken by a latch/flip-flop/C-element).
That is a modelling error in this backend — the event kernels resolve
such loops by physical delay, bitwise evaluation cannot — so we raise
:class:`CombinationalLoopError` naming the *shortest* feedback path by
hierarchy path, found with a BFS from each remaining gate.
"""

from __future__ import annotations

from typing import Dict, List

from ..graphutil import shortest_cycle, topological_levels
from .netlist import CompileError, Netlist


class CombinationalLoopError(CompileError):
    """The comb netlist has gate-only feedback; ``cycle`` names it."""

    def __init__(self, cycle: List[str]) -> None:
        self.cycle = list(cycle)
        loop = " -> ".join(self.cycle + [self.cycle[0]])
        super().__init__(
            f"combinational loop ({len(self.cycle)} gates): {loop}; "
            f"break the feedback with a state element (DLatch, "
            f"DFlipFlop, CElement, DavidCell) or restructure the logic"
        )


def _gate_deps(netlist: Netlist) -> List[List[int]]:
    """``deps[i]`` = indices of gates whose output gate ``i`` reads."""
    comb_driver: Dict[int, int] = {}
    for gi, gate in enumerate(netlist.gates):
        comb_driver[netlist.idx(gate.output)] = gi
    deps: List[List[int]] = []
    for gate in netlist.gates:
        row = []
        for sig in gate.inputs:
            src = comb_driver.get(netlist.idx(sig))
            if src is not None:
                row.append(src)
        deps.append(row)
    return deps


def levelize(netlist: Netlist) -> List[List[int]]:
    """Topological levels of gate indices; raises on comb feedback.

    The Kahn pass and the shortest-feedback-cycle diagnostic both live
    in :mod:`repro.graphutil` now, shared with the lint engine's loop
    rule — the globally shortest loop is the most readable diagnostic
    (a 2-gate cross-coupled pair is reported as 2 gates, not as the
    40-gate strongly-connected blob it might sit inside), and the cycle
    lists gates in dependency order (each reads the previous), i.e.
    signal-flow first.
    """
    deps = _gate_deps(netlist)
    levels, leftover = topological_levels(deps)
    if leftover:
        raise CombinationalLoopError(
            [netlist.gates[gi].path
             for gi in shortest_cycle(deps, leftover)]
        )
    return levels
