"""Bit-parallel compiled simulation backend (third backend).

Pipeline: :func:`~repro.compiled.netlist.extract` walks an elaborated
Component tree into a whitelisted IR, :func:`~repro.compiled.levelize.levelize`
orders the combinational gates (with loop diagnostics), and
:func:`~repro.compiled.backend.compile_component` emits one Python
function of 64-bit bitwise operations where bit ``k`` of every net is
simulation lane ``k`` — 64 Monte Carlo samples per evaluation.

:class:`~repro.compiled.oracle.StepOracle` runs the same circuit on an
event kernel with the same phase discipline, which is how the
equivalence suites pin lane 0 to the event kernels bit-for-bit.
"""

from .backend import (
    LANES,
    MASK,
    CompiledCircuit,
    CompiledStats,
    SettleError,
    compile_component,
)
from .circuits import (
    ALL,
    KINDS,
    BenchCircuit,
    build_bench,
    lane_phases,
    stimulus_phases,
)
from .levelize import CombinationalLoopError, levelize
from .netlist import CompileError, Netlist, extract
from .oracle import StepOracle

__all__ = [
    "ALL",
    "LANES",
    "MASK",
    "KINDS",
    "BenchCircuit",
    "CombinationalLoopError",
    "CompileError",
    "CompiledCircuit",
    "CompiledStats",
    "Netlist",
    "SettleError",
    "StepOracle",
    "build_bench",
    "compile_component",
    "extract",
    "lane_phases",
    "levelize",
    "stimulus_phases",
]
