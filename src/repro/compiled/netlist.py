"""Netlist extraction: an elaborated Component tree → bit-parallel IR.

The compiled backend does not interpret events; it *compiles* the
structure that :meth:`repro.design.component.Component.elaborate` (or
the eager constructors) produced.  Extraction walks the instance tree
and maps every element onto one of two intermediate forms:

* :class:`CombGate` — a pure function of its input nets (the
  ``Inverter``/``And2``/…/``Mux2`` family).  These are levelized into a
  topological evaluation order by :mod:`repro.compiled.levelize`.
* :class:`StateElement` — anything that holds state or reacts to edges
  (latches, flip-flops, C-elements, David cells, one-hot mux keepers,
  flag synchronizers, ring oscillators).  These are evaluated in a
  sequential update phase with two-phase (read-all-then-commit)
  semantics, which is what breaks feedback through storage.

The supported family is a whitelist: a component type the extractor
does not know is a hard :class:`CompileError` naming the instance path,
never a silent approximation.  Components whose behaviour lives in
Python callbacks or coroutine processes (the link serializers, the
one-hot sequencer glue) are explicitly rejected — the event kernels
remain the home of those models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..design.component import Component
from ..elements.celement import CElement
from ..elements.davidcell import DavidCell, OneHotSequencer
from ..elements.fourphase import SimpleLatchController, WireBufferStage
from ..elements.gates import (
    And2,
    Gate,
    Inverter,
    Mux2,
    Nand2,
    Nor2,
    OneHotMux,
    Or2,
    Xor2,
)
from ..elements.latches import (
    DFlipFlop,
    DLatch,
    FlagSynchronizer,
    LatchBus,
    RegisterBus,
)
from ..elements.ringosc import RingOscillator
from ..elements.shiftreg import PulseShiftRegister, SliceShiftRegister
from ..link.serializer import Deserializer, Serializer
from ..link.wiring import AsyncWireBufferChain


class CompileError(ValueError):
    """The design cannot be compiled; the message names the instance."""


#: comb gate type → (kind tag, expected input arity)
_COMB_KINDS = {
    Inverter: ("inv", 1),
    And2: ("and2", 2),
    Or2: ("or2", 2),
    Nand2: ("nand2", 2),
    Nor2: ("nor2", 2),
    Xor2: ("xor2", 2),
    Mux2: ("mux2", 3),
}

#: container types that carry no behaviour of their own — their
#: children are the circuit (the base Component is always a container)
_CONTAINERS = (LatchBus, SimpleLatchController, WireBufferStage)

#: types whose behaviour lives outside the structural netlist (Python
#: callbacks, coroutine processes, transport wires) — rejected with an
#: explanation instead of the generic unknown-type error
_REJECTED: Dict[type, str] = {
    OneHotSequencer: (
        "its token-advance glue lives in Python callbacks, not in the "
        "netlist; build the ring from DavidCell + gates instead"
    ),
    Serializer: (
        "its slice engine is a coroutine process the structural walk "
        "cannot see; use the event kernels for link serializers"
    ),
    Deserializer: (
        "its assembly engine is a coroutine process the structural "
        "walk cannot see; use the event kernels for link deserializers"
    ),
    AsyncWireBufferChain: (
        "its repeater stages are transport wire() listeners, invisible "
        "to the structural walk"
    ),
    SliceShiftRegister: (
        "its stages shift inside a Python edge callback over Bus "
        "state; model the register from RegisterBus stages instead"
    ),
    PulseShiftRegister: (
        "its completion bit lives in a Python list updated by edge "
        "callbacks; model it from DFlipFlop stages instead"
    ),
}


@dataclass
class CombGate:
    """One levelizable gate: ``output = kind(inputs)``."""

    path: str
    kind: str
    inputs: Tuple[object, ...]
    output: object

    def reads(self) -> Tuple[object, ...]:
        return self.inputs

    def drives(self) -> Tuple[object, ...]:
        return (self.output,)


@dataclass
class StateElement:
    """One sequential-phase element.

    ``pins`` maps role names (kind-specific: ``d``, ``g``, ``q``,
    ``clk``, …) to Signal objects or tuples of Signals;  ``params``
    carries plain values (invert flags, reset polarity).  ``edges``
    lists the nets whose rising edges the element watches — the
    backend keeps a per-round previous-value baseline for each.
    """

    path: str
    kind: str
    pins: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    edges: Tuple[object, ...] = ()

    def _flat(self, names: Sequence[str]) -> List[object]:
        out: List[object] = []
        for name in names:
            pin = self.pins.get(name)
            if pin is None:
                continue
            stack = [pin]
            while stack:
                item = stack.pop(0)
                if isinstance(item, (tuple, list)):
                    stack[:0] = list(item)
                else:
                    out.append(item)
        return out

    def reads(self) -> List[object]:
        return self._flat(_STATE_READS[self.kind])

    def drives(self) -> List[object]:
        return self._flat(_STATE_DRIVES[self.kind])


_STATE_READS = {
    "dlatch": ("d", "g"),
    "dff": ("d", "clk", "clear"),
    "regbus": ("d", "clk", "enable"),
    "celement": ("inputs", "reset"),
    "davidcell": ("set", "clear"),
    "onehotmux": ("sel", "ins"),
    "flagsync": ("clk", "wr_en", "clear"),
    "ringosc": ("enable",),
}
_STATE_DRIVES = {
    "dlatch": ("q",),
    "dff": ("q",),
    "regbus": ("q",),
    "celement": ("q",),
    "davidcell": ("q", "o1"),
    "onehotmux": ("out",),
    "flagsync": ("flag_a", "sync1", "flag_s"),
    "ringosc": ("out",),
}


@dataclass
class Netlist:
    """Extraction result: nets, comb gates, state elements."""

    nets: List[object]
    index: Dict[int, int]  # id(Signal) → net index
    names: Dict[str, int]  # Signal.name → net index (first wins)
    gates: List[CombGate]
    states: List[StateElement]
    driver_of: Dict[int, str]  # net index → driving element path

    def idx(self, sig) -> int:
        return self.index[id(sig)]

    def input_nets(self) -> List[int]:
        """Net indices nothing in the netlist drives (stimulus points)."""
        return [
            i for i in range(len(self.nets)) if i not in self.driver_of
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        for state in self.states:
            counts[state.kind] = counts.get(state.kind, 0) + 1
        return counts


def _state_record(comp: Component, path: str) -> Optional[StateElement]:
    """Map a supported sequential element to its IR record."""
    if isinstance(comp, DLatch):
        return StateElement(
            path, "dlatch",
            pins={"d": comp.d, "g": comp.g, "q": comp.q},
        )
    if isinstance(comp, DFlipFlop):
        return StateElement(
            path, "dff",
            pins={"d": comp.d, "clk": comp.clk, "q": comp.q,
                  "clear": comp.clear},
            edges=(comp.clk,),
        )
    if isinstance(comp, RegisterBus):
        return StateElement(
            path, "regbus",
            pins={
                "d": tuple(comp.d.signals),
                "clk": comp.clk,
                "enable": comp.enable,
                "q": tuple(comp.q.signals),
            },
            edges=(comp.clk,),
        )
    if isinstance(comp, CElement):
        return StateElement(
            path, "celement",
            pins={"inputs": tuple(comp.inputs), "q": comp.output,
                  "reset": comp.reset},
            params={"invert": tuple(bool(v) for v in comp.invert),
                    "reset_value": comp.reset_value},
        )
    if isinstance(comp, DavidCell):
        return StateElement(
            path, "davidcell",
            pins={"set": comp.set_in, "clear": comp.clear_in,
                  "q": comp.q, "o1": comp.q_to_prev},
            edges=(comp.set_in,),
        )
    if isinstance(comp, OneHotMux):
        return StateElement(
            path, "onehotmux",
            pins={
                "sel": tuple(comp.sel),
                "ins": tuple(
                    tuple(bus.signals) for bus in comp.inputs
                ),
                "out": tuple(comp.out.signals),
            },
        )
    if isinstance(comp, FlagSynchronizer):
        return StateElement(
            path, "flagsync",
            pins={"clk": comp.clk, "wr_en": comp.wr_en,
                  "clear": comp.clear, "flag_a": comp.flag_a,
                  "sync1": comp._sync1, "flag_s": comp.flag_s},
            edges=(comp.clk,),
        )
    if isinstance(comp, RingOscillator):
        return StateElement(
            path, "ringosc",
            pins={"enable": comp.enable, "out": comp.out},
            params={"half_period": comp.half_period},
        )
    return None


def _problem(problems: Optional[List[Dict[str, object]]],
             kind: str, path: str, message: str,
             **extra: object) -> None:
    """Record (relaxed mode) or raise (strict mode) one extraction
    problem.  Strict mode — ``problems is None`` — is the compiled
    backend's historical contract: the first problem is a hard
    :class:`CompileError`.  Relaxed mode is the lint engine's: collect
    everything, keep walking, and let rules decide severity."""
    if problems is None:
        raise CompileError(message)
    problems.append(
        {"kind": kind, "path": path, "message": message, **extra}
    )


def _visit(comp: Component, path: str, gates: List[CombGate],
           states: List[StateElement],
           problems: Optional[List[Dict[str, object]]] = None) -> None:
    for cls, reason in _REJECTED.items():
        if isinstance(comp, cls):
            _problem(
                problems, "unsupported", path,
                f"cannot compile {path!r} ({type(comp).__name__}): "
                f"{reason}",
                type=type(comp).__name__,
            )
            return
    kind = _COMB_KINDS.get(type(comp))
    if kind is not None:
        tag, arity = kind
        if len(comp.inputs) != arity:
            _problem(
                problems, "bad-arity", path,
                f"{path!r}: {tag} gate with {len(comp.inputs)} inputs",
            )
            return
        gates.append(
            CombGate(path, tag, tuple(comp.inputs), comp.output)
        )
        return
    if isinstance(comp, Gate):
        # a Gate subclass (or raw Gate) outside the table carries an
        # arbitrary Python func the compiler cannot translate
        _problem(
            problems, "unsupported", path,
            f"cannot compile {path!r}: generic Gate with an opaque "
            f"evaluation function; use the named gate classes "
            f"({', '.join(c.__name__ for c in _COMB_KINDS)})",
            type=type(comp).__name__,
        )
        return
    state = _state_record(comp, path)
    if state is not None:
        states.append(state)
        for leaf, child in comp.children.items():
            _visit(child, f"{path}.{leaf}", gates, states, problems)
        return
    if isinstance(comp, _CONTAINERS) or type(comp) is Component \
            or comp.children or type(comp).build is not Component.build \
            or comp.ports:
        # structural containers: anything whose circuit is entirely its
        # children.  Declarative subclasses land here too — whatever
        # their build() placed is in the tree; a build() that spawned a
        # process instead placed nothing compilable, and the resulting
        # empty netlist (or the equivalence machinery) makes that loud.
        for leaf, child in comp.children.items():
            _visit(child, f"{path}.{leaf}", gates, states, problems)
        return
    _problem(
        problems, "unsupported", path,
        f"cannot compile {path!r}: unsupported component type "
        f"{type(comp).__name__} (supported primitives: "
        f"{', '.join(sorted(_supported_names()))})",
        type=type(comp).__name__,
    )


def _supported_names() -> List[str]:
    names = [cls.__name__ for cls in _COMB_KINDS]
    names += ["DLatch", "LatchBus", "DFlipFlop", "RegisterBus",
              "CElement", "DavidCell", "OneHotMux", "FlagSynchronizer",
              "RingOscillator"]
    return names


def extract(root: Component,
            problems: Optional[List[Dict[str, object]]] = None
            ) -> Netlist:
    """Build the compiled IR for the subtree rooted at ``root``.

    Strict mode (the default) raises :class:`CompileError` on
    unsupported component types and on nets with more than one
    structural driver — the compiled backend's contract.  Passing a
    list as ``problems`` switches to relaxed mode for static analysis:
    every problem is appended as a ``{"kind", "path", "message", ...}``
    record (kinds: ``unsupported``, ``bad-arity``, ``multi-driver``,
    ``empty``), unsupported subtrees are skipped, the first driver of a
    contested net wins, and the (possibly partial, possibly empty)
    netlist is still returned.
    """
    gates: List[CombGate] = []
    states: List[StateElement] = []
    _visit(root, root.path, gates, states, problems)
    if not gates and not states:
        _problem(
            problems, "empty", root.path,
            f"{root.path!r} contains nothing compilable — no supported "
            f"gates or state elements were found in the tree",
        )

    nets: List[object] = []
    index: Dict[int, int] = {}
    names: Dict[str, int] = {}

    def intern(sig) -> int:
        if sig is None:
            raise CompileError("internal: attempted to intern None net")
        key = id(sig)
        if key not in index:
            index[key] = len(nets)
            nets.append(sig)
            names.setdefault(sig.name, index[key])
        return index[key]

    driver_of: Dict[int, str] = {}
    for element in [*gates, *states]:
        for sig in element.reads():
            intern(sig)
        for sig in element.drives():
            i = intern(sig)
            other = driver_of.get(i)
            if other is not None:
                _problem(
                    problems, "multi-driver", nets[i].name,
                    f"net {nets[i].name!r} has two structural drivers: "
                    f"{other} and {element.path}",
                    drivers=[other, element.path],
                )
                continue
            driver_of[i] = element.path
    return Netlist(
        nets=nets,
        index=index,
        names=names,
        gates=gates,
        states=states,
        driver_of=driver_of,
    )
