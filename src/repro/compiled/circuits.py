"""Compilable serializer-style bench circuits (I1/I2/I3 families).

The paper's three link styles are exercised across the repo by
event-kernel testbenches with coroutine processes, which the compiled
backend deliberately refuses.  These benches rebuild the same *flavor*
of structure from compilable primitives only:

* ``i1`` — parallel link: a 32-bit transparent latch word plus a parity
  reduction tree (pure comb depth, the levelizer's bread and butter);
* ``i2`` — per-transfer style: a 2-bit flip-flop counter, one-hot slice
  decoder, OneHotMux slice steering, four RegisterBus de-serializer
  slots and a C-element completion flag;
* ``i3`` — per-word style: ``i2`` plus a David-cell token (set through
  a derived clock-AND edge) and a FlagSynchronizer whose asynchronous
  clear is the token.

Every net is addressable by its signal name; :func:`stimulus_phases`
generates the matching phase-by-phase stimulus with one independent
random stream per lane, so the same function feeds a 64-lane compiled
run and the single-lane event oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..design.component import Component
from ..elements.celement import c2
from ..elements.davidcell import DavidCell
from ..elements.gates import And2, Inverter, OneHotMux, Xor2
from ..elements.latches import (
    DFlipFlop,
    FlagSynchronizer,
    LatchBus,
    RegisterBus,
)

ALL = (1 << 64) - 1

KINDS = ("i1", "i2", "i3")

#: slices in the i2/i3 de-serializer (fixed by the 2-bit counter)
SLOTS = 4


@dataclass
class BenchCircuit:
    """A built bench: the root tree plus its net-name contract."""

    kind: str
    root: Component
    width: int
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    fault_sites: List[str] = field(default_factory=list)


def _parity_tree(sim, sigs, name: str, root: Component) -> str:
    """Xor reduction; returns the final output's signal name."""
    level = list(sigs)
    k = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            gate = Xor2(sim, level[i], level[i + 1], name=f"{name}.x{k}")
            root.adopt(gate)
            k += 1
            nxt.append(gate.output)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0].name


def _build_i1(sim, width: int) -> BenchCircuit:
    root = Component("i1")
    d = sim.bus(width, "i1.d")
    g = sim.signal("i1.g")
    lat = LatchBus(sim, d, g, name="i1.lat")
    root.adopt(lat)
    parity = _parity_tree(sim, lat.q.signals, "i1", root)
    return BenchCircuit(
        kind="i1",
        root=root,
        width=width,
        inputs=[sig.name for sig in d.signals] + ["i1.g"],
        outputs=[sig.name for sig in lat.q.signals] + [parity],
        fault_sites=[
            lat.q.signals[0].name,
            lat.q.signals[width // 2].name,
            "i1.x0.out",
            parity,
        ],
    )


def _build_i2_core(sim, name: str, width: int, root: Component) -> Dict:
    """Counter + decoder + mux + register slots + completion flag."""
    sw = max(1, width // SLOTS)
    clk = sim.signal(f"{name}.clk")
    rst = sim.signal(f"{name}.rst")
    slices = [sim.bus(sw, f"{name}.s{t}") for t in range(SLOTS)]

    # 2-bit counter: q0 toggles every edge, q1 toggles when q0 is high
    q0 = sim.signal(f"{name}.q0")
    q1 = sim.signal(f"{name}.q1")
    inv_d0 = Inverter(sim, q0, name=f"{name}.invd0")
    xor_d1 = Xor2(sim, q1, q0, name=f"{name}.xord1")
    ff0 = DFlipFlop(sim, inv_d0.output, clk, q=q0, clear=rst,
                    name=f"{name}.ff0")
    ff1 = DFlipFlop(sim, xor_d1.output, clk, q=q1, clear=rst,
                    name=f"{name}.ff1")

    # one-hot slot decoder
    nq0 = Inverter(sim, q0, name=f"{name}.nq0")
    nq1 = Inverter(sim, q1, name=f"{name}.nq1")
    sels = []
    for t in range(SLOTS):
        lo = q0 if t & 1 else nq0.output
        hi = q1 if t & 2 else nq1.output
        sels.append(And2(sim, hi, lo, name=f"{name}.sel{t}"))

    mux_out = sim.bus(sw, f"{name}.mux")
    mux = OneHotMux(sim, slices, [s.output for s in sels], mux_out,
                    name=f"{name}.ohm")
    regs = [
        RegisterBus(sim, mux_out, clk, sels[t].output,
                    name=f"{name}.r{t}")
        for t in range(SLOTS)
    ]
    done = c2(sim, q0, q1, reset=rst, name=f"{name}.done")
    for comp in (inv_d0, xor_d1, ff0, ff1, nq0, nq1, *sels, mux,
                 *regs, done):
        root.adopt(comp)
    return {
        "clk": clk, "rst": rst, "slices": slices, "sels": sels,
        "regs": regs, "done": done, "slice_width": sw,
    }


def _core_names(name: str, core: Dict) -> Dict[str, List[str]]:
    inputs = [f"{name}.clk", f"{name}.rst"]
    for bus in core["slices"]:
        inputs += [sig.name for sig in bus.signals]
    outputs = [f"{name}.done.z"]
    for reg in core["regs"]:
        outputs += [sig.name for sig in reg.q.signals]
    faults = [
        f"{name}.sel0.out",
        f"{name}.invd0.out",
        f"{name}.mux[0]",
        core["regs"][1].q.signals[0].name,
    ]
    return {"inputs": inputs, "outputs": outputs, "faults": faults}


def _build_i2(sim, width: int) -> BenchCircuit:
    root = Component("i2")
    core = _build_i2_core(sim, "i2", width, root)
    names = _core_names("i2", core)
    return BenchCircuit(
        kind="i2", root=root, width=width,
        inputs=names["inputs"], outputs=names["outputs"],
        fault_sites=names["faults"],
    )


def _build_i3(sim, width: int) -> BenchCircuit:
    root = Component("i3")
    core = _build_i2_core(sim, "i3", width, root)
    tok_clr = sim.signal("i3.tokclr")
    # token set fires on the clock edge that completes a word (done=1)
    set_and = And2(sim, core["done"].output, core["clk"],
                   name="i3.seta")
    dc = DavidCell(sim, set_and.output, tok_clr, name="i3.dc")
    flag = FlagSynchronizer(sim, core["clk"],
                            core["sels"][SLOTS - 1].output, dc.q,
                            name="i3.flag")
    for comp in (set_and, dc, flag):
        root.adopt(comp)
    names = _core_names("i3", core)
    return BenchCircuit(
        kind="i3", root=root, width=width,
        inputs=names["inputs"] + ["i3.tokclr"],
        outputs=names["outputs"] + ["i3.dc.q", "i3.flag.a",
                                    "i3.flag.s"],
        fault_sites=names["faults"] + ["i3.seta.out"],
    )


def build_bench(sim, kind: str = "i3", width: int = 32) -> BenchCircuit:
    """Construct one bench circuit on ``sim``; compilable as-is."""
    if kind == "i1":
        return _build_i1(sim, width)
    if kind == "i2":
        return _build_i2(sim, width)
    if kind == "i3":
        return _build_i3(sim, width)
    raise ValueError(f"unknown bench kind {kind!r} (choose from {KINDS})")


# ----------------------------------------------------------------------
# stimulus


def stimulus_phases(kind: str, lane_seeds: Sequence[object],
                    vectors: int, width: int = 32
                    ) -> List[Dict[str, int]]:
    """Phase-by-phase stimulus, one independent stream per lane.

    Returns a list of phases; each phase maps net name → 64-lane word
    (bit ``k`` carries lane ``k``'s value).  The phase *structure* —
    which nets are poked, in which order — depends only on
    ``(kind, vectors, width)``, never on the seeds, which is what lets
    requests with different seeds pack into one compiled run.  Passing
    a single seed yields single-lane stimulus for the event oracle.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown bench kind {kind!r}")
    rngs = [random.Random(f"{kind}:{seed}") for seed in lane_seeds]

    def draw() -> int:
        word = 0
        for k, rng in enumerate(rngs):
            word |= rng.getrandbits(1) << k
        return word

    phases: List[Dict[str, int]] = []
    if kind == "i1":
        for _ in range(vectors):
            phases.append(
                {f"i1.d[{b}]": draw() for b in range(width)}
            )
            phases.append({"i1.g": ALL})
            phases.append({"i1.g": 0})
        return phases

    sw = max(1, width // SLOTS)
    phases.append({f"{kind}.rst": ALL})
    phases.append({f"{kind}.rst": 0})
    for _ in range(vectors):
        for _edge in range(SLOTS):
            phases.append({
                f"{kind}.s{t}[{b}]": draw()
                for t in range(SLOTS) for b in range(sw)
            })
            phases.append({f"{kind}.clk": ALL})
            phases.append({f"{kind}.clk": 0})
        if kind == "i3":
            phases.append({"i3.tokclr": ALL})
            phases.append({"i3.tokclr": 0})
    return phases


def lane_phases(phases: List[Dict[str, int]], lane: int
                ) -> List[Dict[str, int]]:
    """Project 64-lane phase words down to one lane's bit stream."""
    return [
        {name: (word >> lane) & 1 for name, word in phase.items()}
        for phase in phases
    ]
