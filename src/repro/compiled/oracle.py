"""Event-kernel oracle for the compiled backend's equivalence contract.

The compiled backend evaluates *phases*: apply stimulus, settle to
quiescence, sample.  :class:`StepOracle` drives the very same circuit on
an event kernel (either ``repro.sim`` or the frozen ``repro.sim.reference``)
with the same phase discipline — set the poked signals, run the event
queue dry, sample every net — so the two backends produce directly
comparable streams:

* per-phase settled values for every net in the extracted netlist;
* transition counters at *sampled* granularity (a net that glitches
  within a phase but settles back does not count — the compiled backend
  cannot see sub-phase activity, so the contract is defined at the
  granularity both sides share).

The oracle reuses :func:`repro.compiled.netlist.extract` for its net
enumeration, which guarantees both sides sample the same signals under
the same names.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

from .netlist import extract

NetRef = Union[str, object]


class StepOracle:
    """Phase-by-phase event-kernel execution of a compiled circuit."""

    def __init__(self, sim, root) -> None:
        self.sim = sim
        self.root = getattr(root, "top", root)
        self.netlist = extract(self.root)
        self._by_name = {
            sig.name: sig for sig in self.netlist.nets
        }
        # t=0 settle, mirroring CompiledCircuit construction; counters
        # start from the settled state
        self.sim.run()
        self._prev = {
            sig.name: sig._value for sig in self.netlist.nets
        }
        self.rising = 0
        self.falling = 0

    def _signal(self, net: NetRef):
        if isinstance(net, str):
            try:
                return self._by_name[net]
            except KeyError:
                raise ValueError(f"unknown net {net!r}") from None
        return net

    # -- stimulus -----------------------------------------------------
    def poke(self, net: NetRef, value: int) -> None:
        self._signal(net).set(1 if value & 1 else 0)

    def settle(self) -> None:
        """Drain the event queue, then account sampled transitions."""
        self.sim.run()
        for sig in self.netlist.nets:
            new = sig._value
            old = self._prev[sig.name]
            if new != old:
                if new:
                    self.rising += 1
                else:
                    self.falling += 1
                self._prev[sig.name] = new

    def step(self, pokes: Union[Mapping[NetRef, int],
                                Iterable[Tuple[NetRef, int]]] = ()) -> None:
        items = pokes.items() if isinstance(pokes, Mapping) else pokes
        for net, value in items:
            self.poke(net, value)
        self.settle()

    # -- fault lanes --------------------------------------------------
    def force(self, net: NetRef, value: int) -> None:
        self._signal(net).force(1 if value & 1 else 0)

    def release(self, net: NetRef) -> None:
        self._signal(net).release()

    # -- observation --------------------------------------------------
    def peek(self, net: NetRef) -> int:
        return self._signal(net)._value

    def values(self) -> Dict[str, int]:
        return {sig.name: sig._value for sig in self.netlist.nets}

    def counts(self) -> Dict[str, int]:
        return {"rising": self.rising, "falling": self.falling}

    def zero_counts(self) -> None:
        self.rising = 0
        self.falling = 0
