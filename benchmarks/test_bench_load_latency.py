"""Benchmark: load-latency curves for meshes on each link implementation.

The standard NoC characterization the paper's system context implies:
mean packet latency vs offered load for a 4×4 mesh wired with I1 / I2 /
I3 links at a 300 MHz switch clock.
"""

from repro.analysis import format_table
from repro.link.behavioral import derive_link_params
from repro.noc import Topology, latency_vs_load

RATES = (0.05, 0.15, 0.25, 0.35)


def sweep(tech, kind):
    topo = Topology(4, 4)
    params = derive_link_params(tech, kind, 300.0)
    return latency_vs_load(
        topo, params, injection_rates=RATES,
        warmup_cycles=300, measure_cycles=1200,
    )


def test_bench_load_latency(benchmark, tech, report):
    i3 = benchmark.pedantic(sweep, args=(tech, "I3"), rounds=2, iterations=1)
    curves = {"I3": i3, "I1": sweep(tech, "I1"), "I2": sweep(tech, "I2")}
    rows = []
    for kind in ("I1", "I2", "I3"):
        for row in curves[kind]:
            rows.append(
                [
                    kind,
                    row["offered_rate"],
                    f"{row['throughput']:.3f}",
                    f"{row['mean_latency']:.1f}",
                    f"{row['p99_latency']:.0f}",
                ]
            )
    report(
        format_table(
            ("link", "offered (flit/node/cyc)", "accepted",
             "mean latency (cyc)", "p99 (cyc)"),
            rows,
            title="4x4 mesh load-latency, uniform traffic, 300 MHz",
        )
    )
    # below saturation every link type accepts the offered load
    for kind, sweep_rows in curves.items():
        low = sweep_rows[0]
        assert low["throughput"] >= 0.8 * low["offered_rate"], kind
    # latency curves are monotone in load
    for kind, sweep_rows in curves.items():
        lats = [r["mean_latency"] for r in sweep_rows]
        assert lats == sorted(lats), kind
