"""Benchmarks for the design-choice ablations DESIGN.md calls out.

* serialization ratio (slice width) design space;
* early word-acknowledge extension (the paper's future work);
* buffer-count sensitivity of the throughput ceilings.
"""

from repro.experiments import ablation


def test_bench_ablation_serialization(benchmark, tech, report):
    result = benchmark(ablation.serialization_sweep, tech)
    report(result.render())
    assert result.all_ok


def test_bench_ablation_early_ack(benchmark, tech, report):
    result = benchmark.pedantic(
        ablation.early_ack_study,
        args=(tech,),
        kwargs={"n_flits": 12},
        rounds=2,
        iterations=1,
    )
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]


def test_bench_ablation_buffer_count(benchmark, tech, report):
    result = benchmark(ablation.buffer_count_study, tech)
    report(result.render())
    assert result.all_ok
