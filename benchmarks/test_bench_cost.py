"""Benchmark: mesh-level cost sheet (extension of Figs 10/11/13 + Table 1).

Sums the paper's per-link metrics over a whole 4×4 mesh: total wires,
wiring area, circuit area and link power per implementation.
"""

from repro.analysis import format_table, mesh_cost_comparison
from repro.noc import Topology


def test_bench_mesh_cost(benchmark, tech, report):
    comparison = benchmark(
        mesh_cost_comparison, tech, Topology(4, 4), 1000.0, 4, 300.0
    )
    rows = []
    for kind, cost in comparison.items():
        rows.append(
            [
                kind,
                cost.total_wires,
                f"{cost.wiring_area_um2:,.0f}",
                f"{cost.circuit_area_um2:,.0f}",
                f"{cost.total_area_um2:,.0f}",
                f"{cost.total_power_mw:.1f}",
            ]
        )
    report(
        format_table(
            ("link", "wires", "wiring area (um^2)", "circuit area (um^2)",
             "total area (um^2)", "power (mW)"),
            rows,
            title="4x4 mesh (48 links), 1 mm links, 4 buffers, 300 MHz",
        )
    )
    i1, i3 = comparison["I1"], comparison["I3"]
    assert i3.total_wires * 3 < i1.total_wires * 1.01
    assert i3.total_area_um2 < i1.total_area_um2
