"""Overhead gate for the observability layer.

The registry's contract with the kernels is that a *disabled* metrics
site costs one attribute check — nothing allocated, nothing published,
no registry mutation.  Two kinds of protection:

* a deterministic gate: heavy kernel runs with collection off must
  leave the registry byte-for-byte empty (any metric object appearing
  means an instrumentation site lost its ``if _OBS.enabled`` guard and
  is now paying on every run);
* timed benchmarks of the same publish-heavy workload in both modes,
  plus a generous wall-clock ratio bound — disabled mode does strictly
  less work than enabled mode, so a disabled run that costs
  significantly *more* than an enabled one signals work leaking ahead
  of the guard.
"""

import time

from repro.obs import metrics
from repro.sim import Simulator


def _publish_heavy(n_runs: int = 120, events_per_run: int = 50) -> int:
    """Many short ``run()`` calls: the publish boundary dominates.

    One long run amortizes the end-of-run publish into noise; this
    shape hits the boundary ``n_runs`` times, which is exactly where
    enabled-mode cost lives — and where disabled mode must pay only
    the guard.
    """
    sim = Simulator()
    executed = 0
    for _ in range(n_runs):
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < events_per_run:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        executed += count
    return executed


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_run_leaves_registry_untouched():
    """The deterministic guard-drop detector."""
    prior = metrics.REGISTRY.enabled
    metrics.REGISTRY.reset()
    metrics.REGISTRY.enabled = False
    try:
        assert _publish_heavy() == 120 * 50
        assert metrics.REGISTRY.is_empty()
    finally:
        metrics.REGISTRY.enabled = prior


def test_bench_kernel_metrics_disabled(benchmark):
    prior = metrics.REGISTRY.enabled
    metrics.REGISTRY.enabled = False
    try:
        assert benchmark(_publish_heavy) == 120 * 50
    finally:
        metrics.REGISTRY.enabled = prior


def test_bench_kernel_metrics_enabled(benchmark):
    def run_enabled():
        with metrics.collecting(reset=True):
            return _publish_heavy()

    assert benchmark(run_enabled) == 120 * 50


def test_disabled_mode_not_slower_than_enabled():
    """Disabled does strictly less work; a big inversion means cost
    leaked ahead of the ``if _OBS.enabled`` guard.  The bound is loose
    (1.5x on best-of-5 minima) because both sides are fast and CI
    timers are noisy — this catches structural regressions, not
    percentage drift (the pytest-benchmark entries above track that).
    """
    prior = metrics.REGISTRY.enabled
    try:
        metrics.REGISTRY.enabled = False
        disabled = _best_of(_publish_heavy)

        def run_enabled():
            with metrics.collecting(reset=True):
                _publish_heavy()

        enabled = _best_of(run_enabled)
    finally:
        metrics.REGISTRY.enabled = prior
        metrics.REGISTRY.reset()
    assert disabled <= enabled * 1.5, (
        f"metrics-disabled run ({disabled:.4f}s) is much slower than "
        f"the enabled run ({enabled:.4f}s): is work happening before "
        f"the enabled-flag guard?"
    )
