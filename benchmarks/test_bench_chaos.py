"""Overhead gate for the chaos/integrity layer.

Two promises are made by the robustness work and both are checked
here:

* a sweep with **no** ``REPRO_CHAOS`` spec must not construct any
  chaos machinery at all — no policy, no transport wrapper, no
  per-seam RNG draws.  That is structural (deterministic), not timed;
* the integrity checksums that now ride on every journal line, store
  object and published result must stay in the noise: the sha256 over
  a few hundred canonical-JSON bytes is tiny next to executing the
  point and the open-write-flush-close durability cycle around it.
  The timed gate bounds the checksummed sweep loop at ≤5% over the
  same loop with hashing stubbed out (best-of minima, so scheduler
  noise cancels).
"""

import time

import pytest

from repro.chaos import policy_from_env
from repro.obs import metrics
from repro.runner import engine, registry, sweep
from repro.store import codec
from repro.store.journal import Journal, journal_path
from repro.store.store import RunStore


@pytest.fixture(autouse=True)
def _builtin():
    registry.load_builtin()


def _grid(n):
    return [
        engine.RunRequest.create("sweep-noop", {"point": i})
        for i in range(n)
    ]


def _mesh_requests():
    """The sweep-suite workload: the small mesh design-space grid —
    the same shape ``test_bench_sweep`` times, with real per-point
    simulation cost (the denominator ``points/sec`` refers to)."""
    sc = registry.get("mesh-design-space")
    return sweep.build_requests(
        sc,
        axes={"mesh_size": [2, 3], "injection_rate": [0.05, 0.15]},
        fixed={"cycles": 200},
    )


def _sweep_points(out_dir) -> int:
    """The sweep hot loop: execute, journal, store — per point."""
    requests = _mesh_requests()
    outcomes = engine.execute(requests, jobs=1)
    writer = Journal(journal_path(out_dir))
    writer.start("mesh-design-space", "bench")
    store = RunStore(out_dir / "store")
    for outcome in outcomes:
        writer.append(outcome)
        store.put(outcome)
    return len(outcomes)


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_no_chaos_spec_means_no_chaos_machinery(monkeypatch, tmp_path):
    """Structural zero-overhead check for the dormant chaos layer.

    Without ``REPRO_CHAOS`` in the environment no policy exists, so
    the worker runs on the bare transport and no ``chaos.*`` counters
    can ever appear — even with metrics collection on.
    """
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert policy_from_env({}) is None

    from repro.fabric import FileTransport, plan_fabric, run_worker

    transport = FileTransport(tmp_path / "fabric")
    plan_fabric(transport, "sweep-noop", _grid(4))
    with metrics.collecting(reset=True) as registry_view:
        stats = run_worker(transport, worker_id="wk-bench", once=True)
    assert stats.published > 0
    assert not any(
        name.startswith("chaos.")
        for name in registry_view.counters()
    )


def test_bench_sweep_with_checksums(benchmark, tmp_path):
    assert benchmark(lambda: _sweep_points(tmp_path)) == 4


def test_checksum_overhead_within_five_percent(monkeypatch, tmp_path):
    """The ≤5% points/sec gate from the robustness acceptance bar.

    Differencing two timed loops (real hashing vs stubbed hashing)
    cannot resolve this: the mesh simulation's run-to-run jitter is
    tens of times larger than the effect being measured, so that
    comparison flakes in either direction.  Instead every
    ``attach_hash``/``verify_hash`` call is *timed in place* during a
    real checksummed sweep loop, and the accumulated hash time is
    bounded against total wall time.  The timing wrapper's own cost
    lands in the numerator, so the measurement errs conservative.
    """
    real_hash = codec.attach_hash
    real_verify = codec.verify_hash
    spent = [0.0]

    def timed(fn):
        def wrapper(record):
            t0 = time.perf_counter()
            try:
                return fn(record)
            finally:
                spent[0] += time.perf_counter() - t0
        return wrapper

    monkeypatch.setattr(codec, "attach_hash", timed(real_hash))
    monkeypatch.setattr(codec, "verify_hash", timed(real_verify))

    _sweep_points(tmp_path / "warmup")
    spent[0] = 0.0
    total = 0.0
    for i in range(5):
        t0 = time.perf_counter()
        _sweep_points(tmp_path / f"run{i}")
        total += time.perf_counter() - t0

    assert spent[0] > 0.0  # the instrumented path really ran
    fraction = spent[0] / total
    assert fraction <= 0.05, (
        f"integrity hashing consumed {fraction:.1%} of the sweep "
        f"loop ({spent[0] * 1e3:.2f} ms of {total * 1e3:.1f} ms): "
        f"over the 5% budget"
    )
