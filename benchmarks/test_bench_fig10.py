"""Benchmark: regenerate Fig 10 (bandwidth vs. wires)."""

from repro.experiments import fig10


def test_bench_fig10(benchmark, tech, report):
    result = benchmark(fig10.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
