"""Benchmark: regenerate Fig 12 (power vs. buffers @ 100 MHz)."""

from repro.experiments import fig12


def test_bench_fig12(benchmark, tech, report):
    result = benchmark(fig12.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
