"""Wall-clock gate for the static analyzer.

Lint runs as a sweep pre-flight and a CI smoke job, so a full-registry
pass has to stay interactive: the acceptance budget is five seconds
for every registered scenario, rules, waiver matching and rendering
included.  The timed benchmark tracks drift; the hard assert keeps the
pre-flight honest even on a loaded machine.
"""

import time

from repro.lint import format_text, lint_registry, load_waivers

WAIVERS = "lint-waivers.toml"


def _full_registry_lint():
    reports = lint_registry(waivers=load_waivers(WAIVERS))
    format_text(reports)
    return reports


def test_bench_lint_full_registry(benchmark, report):
    reports = benchmark(_full_registry_lint)
    report(format_text(reports))
    assert all(r.worst != "error" for r in reports)


def test_full_registry_lint_under_five_seconds():
    t0 = time.perf_counter()
    reports = _full_registry_lint()
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0, f"full-registry lint took {elapsed:.2f}s"
    assert reports  # the registry is never empty
