"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these track the cost of the event kernel and the
gate-level link simulation so regressions in the substrate are visible.
"""

from repro.link import LinkConfig, build_i3, measure_throughput
from repro.sim import Bus, Clock, Simulator


def test_bench_event_kernel_throughput(benchmark):
    """Schedule-and-run cost for 10k chained events."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 10_000


def test_bench_bus_activity_counting(benchmark):
    def toggle_bus():
        sim = Simulator()
        # start on one phase of the pattern so every set is a full toggle
        bus = Bus(sim, 32, "b", init=0x5A5A5A5A)
        for _ in range(500):
            bus.set(0xA5A5A5A5)
            bus.set(0x5A5A5A5A)
        return bus.transitions

    assert benchmark(toggle_bus) == 500 * 64


def test_bench_gate_level_i3_link(benchmark, tech):
    """Full gate-level I3 link pushing 8 flits at 300 MHz."""

    def run_link():
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig(), tech)
        m = measure_throughput(sim, clock, link, n_flits=8)
        return m.flits_received

    assert benchmark(run_link) == 8
