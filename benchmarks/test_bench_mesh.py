"""Benchmark: mesh-level comparison of I1 vs I3 links.

Beyond the paper's point-to-point evaluation: a 4×4 mesh under uniform
traffic, comparing packet latency and total wiring cost when every
switch-to-switch link is the synchronous baseline vs the proposed
serialized asynchronous link.
"""

from repro.analysis import format_table
from repro.link.behavioral import derive_link_params
from repro.noc import Topology, run_mesh_point


def run_mesh(tech, kind, rate=0.1, cycles=1200, mhz=300.0):
    topo = Topology(4, 4)
    params = derive_link_params(tech, kind, mhz)
    return run_mesh_point(
        topo, params, injection_rate=rate, cycles=cycles,
        drain_max_cycles=200_000,
    )


def test_bench_mesh_8x8_saturation(benchmark, tech, report):
    """8x8 mesh driven past saturation: the worst case for the
    activity-driven kernel (every switch and most links stay active),
    so the arbitration fast paths — not the active sets — carry the
    speedup here.  Contrast with ``repro bench``'s low-load point,
    where the active sets dominate."""
    import time

    from repro.noc import Topology, run_mesh_point
    from repro.noc.reference import reference_mesh_point

    def run_saturated(point_fn):
        topo = Topology(8, 8)
        params = derive_link_params(tech, "I3", 300.0)
        return point_fn(
            topo, params, injection_rate=0.35, cycles=400,
            drain_max_cycles=200_000,
        )

    point = benchmark.pedantic(
        run_saturated, args=(run_mesh_point,), rounds=2, iterations=1
    )
    t0 = time.perf_counter()
    ref_point = run_saturated(reference_mesh_point)
    ref_elapsed = time.perf_counter() - t0
    assert ref_point == point  # bit-identical results at saturation
    report(
        "8x8 mesh @ 0.35 flit/node/cycle (saturated), I3 links: "
        f"accepted {point['throughput']:.3f} flit/node/cycle, "
        f"mean latency {point['mean_latency']:.0f} cyc; seed kernel "
        f"took {ref_elapsed * 1e3:.0f} ms for the same point"
    )
    # saturation accepts less than offered but still moves real traffic
    assert 0.05 < point["throughput"] < 0.35
    assert point["flits_ejected"] == point["flits_injected"]


def test_bench_mesh_i1_vs_i3(benchmark, tech, report):
    point_i3 = benchmark.pedantic(
        run_mesh, args=(tech, "I3"), rounds=2, iterations=1
    )
    point_i1 = run_mesh(tech, "I1")
    rows = []
    for label, point in (("I1 (32-wire sync)", point_i1),
                         ("I3 (10-wire async)", point_i3)):
        rows.append(
            [
                label,
                point["total_wires"],
                f"{point['mean_latency']:.1f}",
                f"{point['throughput']:.3f}",
                point["packets_ejected"],
            ]
        )
    report(
        format_table(
            ("link", "total wires", "mean latency (cyc)",
             "throughput (flit/node/cyc)", "packets"),
            rows,
            title="4x4 mesh, uniform traffic @ 0.1 flit/node/cycle, 300 MHz",
        )
    )
    # the system-level claim: same performance, one third the wires
    assert point_i3["mean_latency"] <= point_i1["mean_latency"] * 1.25
    assert point_i3["total_wires"] * 3 < point_i1["total_wires"] * 1.01
