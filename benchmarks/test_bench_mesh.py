"""Benchmark: mesh-level comparison of I1 vs I3 links.

Beyond the paper's point-to-point evaluation: a 4×4 mesh under uniform
traffic, comparing packet latency and total wiring cost when every
switch-to-switch link is the synchronous baseline vs the proposed
serialized asynchronous link.
"""

from repro.analysis import format_table
from repro.link.behavioral import derive_link_params
from repro.noc import Network, Topology, TrafficConfig, TrafficGenerator


def run_mesh(tech, kind, rate=0.1, cycles=1200, mhz=300.0):
    topo = Topology(4, 4)
    params = derive_link_params(tech, kind, mhz)
    net = Network(topo, params)
    traffic = TrafficGenerator(
        topo, TrafficConfig(injection_rate=rate, seed=2008)
    )
    net.run(cycles, traffic)
    net.drain(max_cycles=200_000)
    return net


def test_bench_mesh_i1_vs_i3(benchmark, tech, report):
    net_i3 = benchmark.pedantic(
        run_mesh, args=(tech, "I3"), rounds=2, iterations=1
    )
    net_i1 = run_mesh(tech, "I1")
    rows = []
    for label, net in (("I1 (32-wire sync)", net_i1),
                       ("I3 (10-wire async)", net_i3)):
        rows.append(
            [
                label,
                net.total_wires,
                f"{net.stats.mean_packet_latency:.1f}",
                f"{net.stats.throughput_flits_per_node_cycle(16):.3f}",
                net.stats.packets_ejected,
            ]
        )
    report(
        format_table(
            ("link", "total wires", "mean latency (cyc)",
             "throughput (flit/node/cyc)", "packets"),
            rows,
            title="4x4 mesh, uniform traffic @ 0.1 flit/node/cycle, 300 MHz",
        )
    )
    # the system-level claim: same performance, one third the wires
    assert net_i3.stats.mean_packet_latency <= (
        net_i1.stats.mean_packet_latency * 1.25
    )
    assert net_i3.total_wires * 3 < net_i1.total_wires * 1.01
