"""Benchmark: result-store and journal overhead vs scenario cost.

Durability must be nearly free — journaling an outcome and publishing
it into the content-addressed store are a few JSON dumps next to a
mesh simulation that takes orders of magnitude longer.  Two probes:

* store round-trip (put + contains + get) for a real sweep outcome;
* a sweep executed with journal+store callbacks vs the bare engine.
"""

import time

from repro.runner import engine, registry, sweep
from repro.store import Journal, RunStore, journal_path


def _requests():
    registry.load_builtin()
    sc = registry.get("mesh-design-space")
    return sweep.build_requests(
        sc, axes={"mesh_size": [2, 3]}, fixed={"cycles": 100}
    )


def test_bench_store_roundtrip(benchmark, tmp_path, report):
    outcome = engine.execute(_requests()[:1])[0]

    def roundtrip(i):
        cache = RunStore(tmp_path / str(i))
        cache.put(outcome)
        assert outcome.request in cache
        return cache.get(outcome.request)

    counter = iter(range(10_000))
    restored = benchmark.pedantic(
        lambda: roundtrip(next(counter)), rounds=5, iterations=3
    )
    assert restored.result.to_csv() == outcome.result.to_csv()
    report("store round-trip: put + contains + get of one sweep outcome")


def test_bench_durable_sweep_overhead(benchmark, tmp_path, report):
    requests = _requests()

    t0 = time.perf_counter()
    engine.execute(requests)
    bare = time.perf_counter() - t0

    def durable(out_dir):
        cache = RunStore(out_dir / "store")
        writer = Journal(journal_path(out_dir))
        writer.start("mesh-design-space")

        def on_outcome(outcome):
            writer.append(outcome)
            if not outcome.error:
                cache.put(outcome)

        return engine.execute(requests, on_outcome=on_outcome)

    counter = iter(range(10_000))
    outcomes = benchmark.pedantic(
        lambda: durable(tmp_path / str(next(counter))),
        rounds=3, iterations=1,
    )
    assert all(o.ok for o in outcomes)

    t0 = time.perf_counter()
    durable(tmp_path / "timed")
    durably = time.perf_counter() - t0
    report(
        f"durable-sweep overhead: bare {bare * 1e3:.1f} ms, "
        f"with journal+store {durably * 1e3:.1f} ms "
        f"({durably / bare:.2f}x)"
    )
    # durability must not multiply sweep cost; generous bound for CI noise
    assert durably < bare * 3 + 0.25
