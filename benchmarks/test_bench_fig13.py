"""Benchmark: regenerate Fig 13 (power vs. buffers @ 300 MHz)."""

from repro.experiments import fig13


def test_bench_fig13(benchmark, tech, report):
    result = benchmark(fig13.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
