"""Bench-harness tests for the compiled suite and the schema-3 reader.

Tiny workloads (milliseconds) exercise the timing/cross-check plumbing;
the schema tests pin backward compatibility: a schema-2 baseline file
(the shape committed before the compiled suite existed) must keep
loading and gating, and a future schema must be refused rather than
silently half-checked.
"""

import json

import pytest

from repro.bench import (
    SCHEMA,
    CompiledBenchPoint,
    check_against_baseline,
    default_compiled_points,
    load_baseline,
    run_bench,
    run_compiled_point,
)

TINY_BATCH = CompiledBenchPoint("fault-batch", 2)
TINY_RING = CompiledBenchPoint("ringosc", 64)


class TestCompiledPoints:
    def test_fault_batch_reports_lanes_and_matching_stats(self):
        outcome = run_compiled_point(TINY_BATCH, repeats=1)
        assert outcome.lanes == 64
        assert outcome.stats_match is True
        assert outcome.speedup is not None and outcome.speedup > 0
        assert outcome.optimized_lps > 0
        record = outcome.to_json()
        assert record["suite"] == "compiled"
        assert record["key"] == "compiled/fault-batch@2"
        assert record["cycles"] == 2

    def test_ringosc_is_single_lane(self):
        outcome = run_compiled_point(TINY_RING, repeats=1)
        assert outcome.lanes == 1
        assert outcome.stats_match is True
        assert outcome.speedup is not None

    def test_reference_skippable(self):
        outcome = run_compiled_point(TINY_RING, reference=False,
                                     repeats=1)
        assert outcome.reference_wall_s is None
        assert outcome.speedup is None
        assert outcome.stats_match is None

    def test_default_points_cover_the_acceptance_gates(self):
        keys = [p.key for p in default_compiled_points()]
        assert keys == ["compiled/fault-batch@12",
                        "compiled/ringosc@20000"]
        fast = [p.key for p in default_compiled_points(scale=0.5)]
        assert fast == ["compiled/fault-batch@6",
                        "compiled/ringosc@10000"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown compiled workload"):
            run_compiled_point(CompiledBenchPoint("warp-drive", 1),
                               repeats=1)

    def test_run_bench_tags_the_suite(self):
        document = run_bench(
            compiled_points=[TINY_RING], reference=False, repeats=1
        )
        assert document["schema"] == SCHEMA == 4
        assert document["suites"] == ["compiled"]
        assert [p["suite"] for p in document["points"]] == ["compiled"]


class TestSchemaCompatibility:
    def _schema2_document(self):
        """The exact shape committed before the compiled suite."""
        return {
            "schema": 2,
            "python": "3.11.7",
            "repeats": 5,
            "suites": ["noc", "gate"],
            "points": [
                {
                    "suite": "noc",
                    "key": "4x4@0.1/uniform/xy/vc1/I3",
                    "cycles": 300,
                    "speedup": 4.9,
                    "stats_match": True,
                },
                {
                    "suite": "gate",
                    "key": "gate/serializer-i3@12",
                    "workload": "serializer-i3",
                    "cycles": 12,
                    "speedup": 2.0,
                    "stats_match": True,
                },
            ],
        }

    def test_schema2_file_still_loads(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(self._schema2_document()))
        assert load_baseline(str(path))["schema"] == 2

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": SCHEMA + 1, "points": []}))
        with pytest.raises(ValueError, match="newer than the supported"):
            load_baseline(str(path))

    def test_compiled_only_run_checked_against_schema2_baseline(self):
        """A schema-2 baseline has no compiled points: nothing to gate,
        nothing to flag — old files keep working as-is."""
        current = {
            "schema": SCHEMA,
            "python": "3.11.7",
            "suites": ["compiled"],
            "points": [{
                "suite": "compiled",
                "key": "compiled/ringosc@64",
                "cycles": 64,
                "speedup": 1.2,
                "stats_match": True,
            }],
        }
        assert check_against_baseline(
            current, self._schema2_document()
        ) == []

    def test_schema3_baseline_gates_compiled_points(self):
        baseline = self._schema2_document()
        baseline["schema"] = 3
        baseline["suites"] = ["noc", "gate", "compiled"]
        baseline["points"].append({
            "suite": "compiled",
            "key": "compiled/fault-batch@6",
            "cycles": 6,
            "lanes": 64,
            "speedup": 50.0,
            "stats_match": True,
        })
        current = {
            "schema": SCHEMA,
            "python": "3.11.7",
            "suites": ["compiled"],
            "points": [{
                "suite": "compiled",
                "key": "compiled/fault-batch@6",
                "cycles": 6,
                "lanes": 64,
                "speedup": 5.0,  # collapsed vs the 50x baseline
                "stats_match": True,
            }],
        }
        problems = check_against_baseline(current, baseline)
        assert len(problems) == 1
        assert "fell below" in problems[0]

    def test_compiled_size_mismatch_names_the_right_knob(self):
        baseline = self._schema2_document()
        baseline["points"].append({
            "suite": "compiled",
            "key": "compiled/fault-batch@6",
            "cycles": 6,
            "speedup": 50.0,
            "stats_match": True,
        })
        current = {
            "schema": SCHEMA,
            "python": "3.11.7",
            "suites": ["compiled"],
            "points": [{
                "suite": "compiled",
                "key": "compiled/fault-batch@6",
                "cycles": 99,
                "speedup": 50.0,
                "stats_match": True,
            }],
        }
        problems = check_against_baseline(current, baseline)
        assert len(problems) == 1
        assert "--compiled-scale" in problems[0]
