"""Shared fixtures for the benchmark harness.

Every benchmark prints the regenerated paper artifact (the same rows or
series the paper reports) through the ``report`` fixture, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole
evaluation section on stdout, and times the regeneration.
"""

import pytest

from repro.tech import st012


@pytest.fixture(scope="session")
def tech():
    return st012()


@pytest.fixture
def report(capsys):
    """Print a rendered experiment table, bypassing capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
            print()

    return _print
