"""Benchmark: Section V delay equations + gate-level throughput.

The benchmark loop times a full gate-level I3 throughput measurement
(the paper's key validation); the report includes the analytical and
simulated numbers side by side.
"""

from repro.experiments import throughput
from repro.experiments.throughput import simulate_ceiling_mflits


def test_bench_throughput_i3_gate_level(benchmark, tech, report):
    ceiling = benchmark.pedantic(
        simulate_ceiling_mflits,
        args=("I3", tech),
        kwargs={"n_flits": 16},
        rounds=3,
        iterations=1,
    )
    result = throughput.run(tech, simulate=True)
    report(result.render())
    assert 290 <= ceiling <= 315
    assert result.all_ok, [c.row() for c in result.failures()]
