"""Benchmark: regenerate Table 2 (module breakdown of I2)."""

from repro.experiments import table2


def test_bench_table2(benchmark, tech, report):
    result = benchmark(table2.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
