"""Benchmark: regenerate Fig 14 (component power breakdown).

The benchmark loop times the analytical breakdown; one gate-level
activity measurement is run outside the loop and appended to the report
(it is the slow cross-check, not the figure itself).
"""

from repro.experiments import fig14


def test_bench_fig14(benchmark, tech, report):
    result = benchmark(fig14.run, tech)
    full = fig14.run(tech, with_activity=True, activity_flits=16)
    report(full.render())
    assert result.all_ok, [c.row() for c in result.failures()]
    assert full.all_ok
