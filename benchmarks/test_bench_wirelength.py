"""Benchmark: wire-length study (Tp restored into the Section V eqns).

The benchmark loop times the analytic sweep; one gate-level cross-check
run is printed alongside (simulated vs equation ceilings at each Tp).
"""

from repro.experiments import wirelength


def test_bench_wirelength(benchmark, tech, report):
    analytic = benchmark(wirelength.run, tech, (0, 50, 150, 300), 4, False)
    full = wirelength.run(tech, segment_delays_ps=(0, 150), n_flits=12)
    report(full.render())
    assert analytic.all_ok
    assert full.all_ok, [c.row() for c in full.failures()]
