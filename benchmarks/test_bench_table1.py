"""Benchmark: regenerate Table 1 (circuit area overhead)."""

from repro.experiments import table1


def test_bench_table1(benchmark, tech, report):
    result = benchmark(table1.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
