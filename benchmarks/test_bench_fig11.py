"""Benchmark: regenerate Fig 11 (wiring area vs. wire length)."""

from repro.experiments import fig11


def test_bench_fig11(benchmark, tech, report):
    result = benchmark(fig11.run, tech)
    report(result.render())
    assert result.all_ok, [c.row() for c in result.failures()]
