"""Benchmark: sweep-engine overhead vs calling experiments directly.

The runner must stay a thin shell — registry lookup, parameter
resolution, request bookkeeping and result collection should cost
little next to the scenarios themselves.  Two probes:

* serial engine execution of an analytical scenario vs the bare
  function call (per-run overhead);
* a small mesh design-space grid through the engine, the shape the
  CLI's ``sweep`` subcommand runs all day.
"""

import time

from repro.experiments import fig12
from repro.runner import engine, registry, sweep


def _engine_fig12(n):
    requests = [engine.RunRequest.create("fig12") for _ in range(n)]
    return engine.execute(requests, jobs=1)


def test_bench_engine_vs_direct(benchmark, report):
    registry.load_builtin()
    n = 5
    outcomes = benchmark.pedantic(
        _engine_fig12, args=(n,), rounds=3, iterations=1
    )
    assert all(o.ok for o in outcomes)

    t0 = time.perf_counter()
    for _ in range(n):
        fig12.run()
    direct = time.perf_counter() - t0

    t0 = time.perf_counter()
    _engine_fig12(n)
    engined = time.perf_counter() - t0

    report(
        f"sweep-engine overhead: {n} fig12 runs direct {direct * 1e3:.1f} ms, "
        f"via engine {engined * 1e3:.1f} ms "
        f"({engined / direct:.2f}x)"
    )
    # the engine may not multiply scenario cost; generous bound for CI noise
    assert engined < direct * 5 + 0.05


def _mesh_grid():
    sc = registry.get("mesh-design-space")
    requests = sweep.build_requests(
        sc,
        axes={"mesh_size": [2, 3], "injection_rate": [0.05, 0.15]},
        fixed={"cycles": 200},
    )
    return engine.execute(requests, jobs=1)


def test_bench_small_mesh_sweep(benchmark, report):
    registry.load_builtin()
    outcomes = benchmark.pedantic(_mesh_grid, rounds=2, iterations=1)
    assert len(outcomes) == 4
    assert all(o.ok for o in outcomes)
    report(
        "mesh design-space grid (2 sizes x 2 rates, 200 cycles) "
        "through the sweep engine"
    )


def _saturated_8x8_point():
    sc = registry.get("mesh-design-space")
    requests = sweep.build_requests(
        sc,
        axes={"mesh_size": [8], "injection_rate": [0.35]},
        fixed={"cycles": 400},
    )
    return engine.execute(requests, jobs=1)


def test_bench_sweep_8x8_saturation(benchmark, report):
    """The largest, most loaded design-space point through the engine —
    the sweep-side view of the cycle-kernel speedup (the engine adds
    only bookkeeping, so this tracks the kernel's saturation number)."""
    registry.load_builtin()
    outcomes = benchmark.pedantic(
        _saturated_8x8_point, rounds=2, iterations=1
    )
    (outcome,) = outcomes
    assert outcome.ok
    assert not outcome.result.failures()
    report(
        "8x8 mesh-design-space point @ 0.35 flit/node/cycle "
        "(saturation) through the sweep engine"
    )
