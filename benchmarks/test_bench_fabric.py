"""Bench-harness tests for the sweep (fabric scheduling-overhead) suite.

A tiny no-op grid (milliseconds) exercises the timing harness — a real
coordinator, a real file-lease transport and a real in-process worker —
plus the cross-check that the fabric's outcomes canonically match the
bare engine's.  The schema-4 gating tests pin that a sweep baseline
point rides the same regression machinery as the other suites: missing
points, diverged results, mismatched grid sizes and efficiency drops
beyond tolerance all fail the check.
"""

import pytest

from repro.bench import (
    SCHEMA,
    SweepBenchPoint,
    check_against_baseline,
    default_sweep_points,
    run_bench,
    run_sweep_point,
)

TINY_GRID = SweepBenchPoint("noop", 8)


class TestSweepPoints:
    def test_fabric_throughput_and_matching_results(self):
        outcome = run_sweep_point(TINY_GRID, repeats=1)
        assert outcome.fabric_pps > 0
        assert outcome.engine_pps > 0
        assert outcome.stats_match is True
        assert outcome.speedup is not None and outcome.speedup > 0
        record = outcome.to_json()
        assert record["suite"] == "sweep"
        assert record["key"] == "sweep/noop@8"
        assert record["cycles"] == 8
        assert record["workers"] == 1

    def test_reference_skippable(self):
        outcome = run_sweep_point(TINY_GRID, reference=False, repeats=1)
        assert outcome.engine_pps is None
        assert outcome.speedup is None
        assert outcome.stats_match is None
        assert outcome.fabric_pps > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep workload"):
            run_sweep_point(SweepBenchPoint("warp-drive", 8), repeats=1)

    def test_default_points_scale_with_a_floor(self):
        assert [p.key for p in default_sweep_points()] == [
            "sweep/noop@64"
        ]
        assert [p.key for p in default_sweep_points(scale=0.5)] == [
            "sweep/noop@32"
        ]
        # the floor keeps a micro-scale run a real grid, not one point
        assert default_sweep_points(scale=0.01)[0].size == 8

    def test_run_bench_tags_the_suite(self):
        document = run_bench(
            sweep_points=[TINY_GRID], reference=False, repeats=1,
            collect_metrics=False,
        )
        assert document["schema"] == SCHEMA == 4
        assert document["suites"] == ["sweep"]
        assert [p["suite"] for p in document["points"]] == ["sweep"]

    def test_metrics_replay_counts_fabric_traffic(self):
        document = run_bench(
            sweep_points=[TINY_GRID], reference=False, repeats=1,
            collect_metrics=True,
        )
        metrics = document["points"][0]["metrics"]
        assert metrics["fabric.points_executed"] == 8
        assert metrics["fabric.items_claimed"] >= 1
        assert metrics["fabric.results"] == 8


class TestSweepGating:
    def _documents(self, **current_overrides):
        base_point = {
            "suite": "sweep", "key": "sweep/noop@32", "cycles": 32,
            "speedup": 0.008, "stats_match": True,
        }
        current_point = dict(base_point)
        current_point.update(current_overrides)
        baseline = {
            "schema": SCHEMA, "python": "3.11.7", "repeats": 5,
            "suites": ["sweep"], "points": [base_point],
        }
        current = {
            "schema": SCHEMA, "python": "3.11.7", "repeats": 5,
            "suites": ["sweep"], "points": [current_point],
        }
        return current, baseline

    def test_matching_run_passes(self):
        current, baseline = self._documents()
        assert check_against_baseline(current, baseline) == []

    def test_efficiency_drop_beyond_tolerance_fails(self):
        current, baseline = self._documents(speedup=0.004)
        problems = check_against_baseline(
            current, baseline, tolerance=0.30
        )
        assert len(problems) == 1
        assert "fell below" in problems[0]

    def test_grid_size_mismatch_names_the_sweep_flag(self):
        current, baseline = self._documents(
            key="sweep/noop@32", cycles=64
        )
        problems = check_against_baseline(current, baseline)
        assert len(problems) == 1
        assert "--sweep-scale" in problems[0]
        assert "grid points" in problems[0]

    def test_noc_only_run_skips_sweep_points(self):
        current, baseline = self._documents()
        current["suites"] = ["noc"]
        current["points"] = []
        assert check_against_baseline(current, baseline) == []
