#!/usr/bin/env python3
"""Static check: kernel hot paths keep the metrics overhead contract.

The observability layer (PR 7) promises that when metrics are disabled
the kernels pay exactly one attribute check (``_OBS.enabled``) per
coarse boundary — never a registry call per event/cycle — and that hot
paths never call ``snapshot()``/``reset()`` (those walk every metric
and belong to the CLI/telemetry layer).  This script encodes that
contract as an AST lint over the hot-path packages so a refactor
cannot silently regress it:

* every ``_OBS.counter/gauge/timer/histogram(...)`` call must sit in
  the taken branch of an ``if``/conditional expression whose test
  mentions ``_OBS.enabled`` — or inside a ``_obs_*`` helper function
  (whose body is bulk-publish code);
* every call *of* a ``_obs_*`` helper must itself be guarded the same
  way (helpers keep call sites cheap only if the guard stays outside);
* ``_OBS.snapshot()`` and ``_OBS.reset()`` never appear at all.

Run from the repository root (CI does)::

    python tools/check_hotpath.py            # exit 1 on violations
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

#: packages whose modules are event/cycle hot paths
HOT_PACKAGES = ("src/repro/sim", "src/repro/noc", "src/repro/compiled")

#: registry methods that create/update metrics (cheap only when guarded)
METRIC_METHODS = frozenset({"counter", "gauge", "timer", "histogram"})

#: registry methods hot paths must never call
FORBIDDEN_METHODS = frozenset({"snapshot", "reset"})

Violation = Tuple[str, int, str]


def _mentions_enabled(test: ast.AST) -> bool:
    """Does this guard expression read ``_OBS.enabled``?"""
    for node in ast.walk(test):
        if (isinstance(node, ast.Attribute)
                and node.attr == "enabled"
                and isinstance(node.value, ast.Name)
                and node.value.id == "_OBS"):
            return True
    return False


def _obs_method(node: ast.AST) -> str:
    """The method name of an ``_OBS.<method>(...)`` call, or ``""``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "_OBS"):
        return node.func.attr
    return ""


def _is_helper_call(node: ast.AST) -> bool:
    """A call of a ``_obs_*`` bulk-publish helper (any receiver)."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr.startswith("_obs_"))


class _Scanner:
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.violations: List[Violation] = []

    def scan(self, node: ast.AST, guarded: bool,
             in_helper: bool) -> None:
        if isinstance(node, ast.If) and _mentions_enabled(node.test):
            self.scan(node.test, guarded, in_helper)
            for child in node.body:
                self.scan(child, True, in_helper)
            for child in node.orelse:  # the *disabled* branch
                self.scan(child, guarded, in_helper)
            return
        if isinstance(node, ast.IfExp) and _mentions_enabled(node.test):
            self.scan(node.test, guarded, in_helper)
            self.scan(node.body, True, in_helper)
            self.scan(node.orelse, guarded, in_helper)
            return
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.startswith("_obs_")):
            # a bulk-publish helper: its body is exempt, its call
            # sites are not (checked below)
            for child in ast.iter_child_nodes(node):
                self.scan(child, guarded, True)
            return

        method = _obs_method(node)
        if method in FORBIDDEN_METHODS:
            self.violations.append((
                self.filename, node.lineno,
                f"_OBS.{method}() is forbidden in hot-path modules; "
                f"snapshotting belongs to the CLI/telemetry layer",
            ))
        elif method in METRIC_METHODS and not (guarded or in_helper):
            self.violations.append((
                self.filename, node.lineno,
                f"_OBS.{method}(...) outside an `if _OBS.enabled` "
                f"guard; disabled-mode cost must stay one attribute "
                f"check",
            ))
        elif _is_helper_call(node) and not (guarded or in_helper):
            self.violations.append((
                self.filename, node.lineno,
                f"call of {node.func.attr}() is unguarded; "  # type: ignore[attr-defined]
                f"wrap the call site in `if _OBS.enabled` so the "
                f"helper stays free when metrics are off",
            ))
        for child in ast.iter_child_nodes(node):
            self.scan(child, guarded, in_helper)


def check_source(source: str, filename: str = "<string>"
                 ) -> List[Violation]:
    """All contract violations in one module's source text."""
    tree = ast.parse(source, filename=filename)
    scanner = _Scanner(filename)
    scanner.scan(tree, guarded=False, in_helper=False)
    return scanner.violations


def check_tree(root: Path) -> List[Violation]:
    """Violations across every hot-path module under ``root``."""
    violations: List[Violation] = []
    for package in HOT_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            rel = str(path.relative_to(root))
            violations.extend(check_source(path.read_text(), rel))
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    missing = [p for p in HOT_PACKAGES if not (root / p).is_dir()]
    if missing:
        print(
            f"check_hotpath: {', '.join(missing)} not found under "
            f"{root.resolve()}; run from the repository root",
            file=sys.stderr,
        )
        return 2
    violations = check_tree(root)
    for filename, lineno, message in violations:
        print(f"{filename}:{lineno}: {message}", file=sys.stderr)
    if violations:
        print(f"{len(violations)} hot-path metrics violation(s)",
              file=sys.stderr)
        return 1
    print("hot-path metrics contract holds "
          f"({', '.join(HOT_PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
