"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-build-isolation`` works on environments whose
setuptools predates PEP 660 editable wheels (and offline boxes without
the ``wheel`` package).
"""

from setuptools import setup

setup()
